//! Plotting and data export: regenerate the paper's figures as files.
//!
//! A dependency-free SVG line/scatter plotter plus a CSV writer, so
//! `repro --out DIR` leaves behind artefacts a reader can diff against the
//! paper's figures:
//!
//! ```
//! use envirotrack_bench::plot::{Series, SvgPlot};
//!
//! let svg = SvgPlot::new("Figure 3", "x (grids)", "y (grids)")
//!     .series(Series::new("reported", vec![(0.0, 0.5), (1.0, 0.6)]))
//!     .series(Series::new("actual", vec![(0.0, 0.5), (1.0, 0.5)]))
//!     .render();
//! assert!(svg.contains("<svg"));
//! assert!(svg.contains("reported"));
//! ```

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// One named line on a plot.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points in drawing order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a named series.
    #[must_use]
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }
}

/// A minimal SVG chart builder (lines + markers + legend + axes).
#[derive(Debug, Clone)]
pub struct SvgPlot {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    log_x: bool,
    width: f64,
    height: f64,
}

/// Colour cycle for series strokes.
const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
];

impl SvgPlot {
    /// Creates an empty plot.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        SvgPlot {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            log_x: false,
            width: 640.0,
            height: 420.0,
        }
    }

    /// Adds a series; chainable.
    #[must_use]
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Uses a log₂ x-axis (for heartbeat-period sweeps); chainable.
    ///
    /// # Panics
    ///
    /// Rendering panics if any x value is non-positive under a log axis.
    #[must_use]
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    fn x_transform(&self, x: f64) -> f64 {
        if self.log_x {
            assert!(x > 0.0, "log axis needs positive x, got {x}");
            x.log2()
        } else {
            x
        }
    }

    /// Renders the SVG document.
    #[must_use]
    pub fn render(&self) -> String {
        let (ml, mr, mt, mb) = (64.0, 140.0, 40.0, 52.0);
        let pw = self.width - ml - mr; // plot width
        let ph = self.height - mt - mb; // plot height

        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, y)| (self.x_transform(x), y)))
            .collect();
        let (mut x0, mut x1) = all
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), p| {
                (a.min(p.0), b.max(p.0))
            });
        let (mut y0, mut y1) = all
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), p| {
                (a.min(p.1), b.max(p.1))
            });
        if !x0.is_finite() {
            (x0, x1) = (0.0, 1.0);
        }
        if !y0.is_finite() {
            (y0, y1) = (0.0, 1.0);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        // A touch of headroom.
        let ypad = (y1 - y0) * 0.08;
        let (y0, y1) = ((y0 - ypad).min(0.0_f64.min(y0)), y1 + ypad);

        let sx = |x: f64| ml + (x - x0) / (x1 - x0) * pw;
        let sy = |y: f64| mt + ph - (y - y0) / (y1 - y0) * ph;

        let mut out = String::new();
        let _ = write!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"#,
            w = self.width,
            h = self.height
        );
        let _ = write!(
            out,
            r#"<rect width="{}" height="{}" fill="white"/>"#,
            self.width, self.height
        );
        // Title and axis labels.
        let _ = write!(
            out,
            r#"<text x="{}" y="24" text-anchor="middle" font-size="15">{}</text>"#,
            ml + pw / 2.0,
            xml_escape(&self.title)
        );
        let _ = write!(
            out,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            ml + pw / 2.0,
            self.height - 12.0,
            xml_escape(&self.x_label)
        );
        let _ = write!(
            out,
            r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            mt + ph / 2.0,
            mt + ph / 2.0,
            xml_escape(&self.y_label)
        );
        // Frame + ticks.
        let _ = write!(
            out,
            r##"<rect x="{ml}" y="{mt}" width="{pw}" height="{ph}" fill="none" stroke="#444"/>"##
        );
        for i in 0..=4 {
            let fx = x0 + (x1 - x0) * f64::from(i) / 4.0;
            let fy = y0 + (y1 - y0) * f64::from(i) / 4.0;
            let label_x = if self.log_x { 2f64.powf(fx) } else { fx };
            let _ = write!(
                out,
                r##"<text x="{}" y="{}" text-anchor="middle" fill="#444">{}</text>"##,
                sx(fx),
                mt + ph + 16.0,
                fmt_tick(label_x)
            );
            let _ = write!(
                out,
                r##"<text x="{}" y="{}" text-anchor="end" fill="#444">{}</text>"##,
                ml - 6.0,
                sy(fy) + 4.0,
                fmt_tick(fy)
            );
            let _ = write!(
                out,
                r##"<line x1="{ml}" y1="{y}" x2="{x2}" y2="{y}" stroke="#ddd"/>"##,
                y = sy(fy),
                x2 = ml + pw
            );
        }
        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            let pts: Vec<String> = s
                .points
                .iter()
                .map(|&(x, y)| format!("{:.2},{:.2}", sx(self.x_transform(x)), sy(y)))
                .collect();
            if pts.len() > 1 {
                let _ = write!(
                    out,
                    r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                    pts.join(" ")
                );
            }
            for p in &pts {
                let (px, py) = p.split_once(',').expect("formatted above");
                let _ = write!(
                    out,
                    r#"<circle cx="{px}" cy="{py}" r="2.6" fill="{color}"/>"#
                );
            }
            // Legend entry.
            let ly = mt + 14.0 + i as f64 * 18.0;
            let _ = write!(
                out,
                r#"<line x1="{x}" y1="{ly}" x2="{x2}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
                x = ml + pw + 10.0,
                x2 = ml + pw + 34.0
            );
            let _ = write!(
                out,
                r##"<text x="{}" y="{}" fill="#222">{}</text>"##,
                ml + pw + 40.0,
                ly + 4.0,
                xml_escape(&s.name)
            );
        }
        out.push_str("</svg>");
        out
    }

    /// Renders and writes to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 100.0 || v == v.trunc() {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Writes a CSV file with a header row.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(
    path: &Path,
    headers: &[&str],
    rows: impl IntoIterator<Item = Vec<String>>,
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_contains_axes_series_and_legend() {
        let svg = SvgPlot::new("Test & Title", "x", "y")
            .series(Series::new(
                "alpha",
                vec![(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)],
            ))
            .series(Series::new("beta", vec![(0.0, 1.0), (2.0, 3.0)]))
            .render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 5);
        assert!(svg.contains("alpha") && svg.contains("beta"));
        assert!(svg.contains("Test &amp; Title"), "XML escaping");
    }

    #[test]
    fn log_axis_transforms_and_labels_in_linear_units() {
        let svg = SvgPlot::new("t", "period", "speed")
            .log_x()
            .series(Series::new(
                "s",
                vec![(0.0625, 4.0), (0.125, 2.0), (2.0, 0.1)],
            ))
            .render();
        // Tick labels are back-transformed to the data domain.
        assert!(svg.contains(">2<") || svg.contains(">2.0<"), "{svg}");
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let _ = SvgPlot::new("empty", "x", "y").render();
        let _ = SvgPlot::new("one point", "x", "y")
            .series(Series::new("p", vec![(1.0, 1.0)]))
            .render();
        let _ = SvgPlot::new("flat", "x", "y")
            .series(Series::new("f", vec![(0.0, 5.0), (1.0, 5.0)]))
            .render();
    }

    #[test]
    #[should_panic(expected = "log axis needs positive x")]
    fn log_axis_rejects_nonpositive_x() {
        let _ = SvgPlot::new("t", "x", "y")
            .log_x()
            .series(Series::new("s", vec![(0.0, 1.0)]))
            .render();
    }

    #[test]
    fn csv_round_trips_through_a_reader() {
        let dir = std::env::temp_dir().join("envirotrack-plot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            vec![vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n3,4\n");
    }
}
