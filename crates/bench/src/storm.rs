//! Traffic storm against the tracking-as-a-service session server.
//!
//! Drives hundreds of concurrent sessions over real TCP loopback against
//! an in-process [`Server`], in three phases:
//!
//! 1. **Ramp** — open `target_sessions` pipelined HELLO+SUBSCRIBE
//!    connections and wait until every one is streaming (measures
//!    connects/s and the hub's query-ack latency under a registration
//!    flood).
//! 2. **Steady** — hold the full population streaming for a fixed window,
//!    counting per-client event deliveries (fairness = Jain's index over
//!    those counts; every client subscribes to the same shared world, so
//!    a fair server delivers near-identical counts).
//! 3. **Storm** (flagship only) — a connect burst past `max_sessions`
//!    (every excess connect must see a synchronous REJECT(Overloaded)),
//!    corrupt-frame senders (any SUBACK/EVENT after a corrupted frame
//!    counts as `corrupt_accepted`, which must stay zero), and stalled
//!    never-reading subscribers that must be shed as slow consumers
//!    while the fast majority keeps streaming.
//!
//! The swarm is a single thread multiplexing non-blocking sockets — the
//! benchmark machine may have one core, so client-side cost is kept to a
//! read pass every few milliseconds, and storm actors run as a handful of
//! short-lived blocking probes on the orchestrator thread.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use envirotrack_core::context::ContextTypeId;
use envirotrack_core::report::json::JsonObject;
use envirotrack_core::wire::session::{
    Close, CloseReason, Hello, RejectReason, SessionMsg, Subscribe, CAP_ALL, SESSION_VERSION,
};
use envirotrack_serve::client::{Client, Handshake};
use envirotrack_serve::worlds::SCENARIO_TESTBED;
use envirotrack_serve::{FrameReader, HubConfig, Server, ServerConfig};
use envirotrack_sim::time::SimDuration;

/// Load-generator knobs. `smoke` is the CI profile; `flagship` adds the
/// storm phase and a longer steady window.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// World seed every swarm client subscribes to.
    pub seed: u64,
    /// Sessions opened during ramp; also the server's `max_sessions`, so
    /// the flagship burst is guaranteed to hit the overload shedder.
    pub target_sessions: usize,
    /// `passed` requires at least this many concurrently active sessions
    /// at the end of the steady window.
    pub min_sustained: u64,
    /// Steady-phase duration (the fairness measurement window).
    pub steady: Duration,
    /// Whether to run the storm phase (overload burst, corrupt senders,
    /// stalled consumers).
    pub storm: bool,
    /// Storm connect-burst size past `max_sessions`.
    pub burst: usize,
    /// Storm clients that corrupt a frame after a valid handshake.
    pub corrupt_senders: usize,
    /// Storm clients that subscribe and then never read.
    pub stalled: usize,
    /// Subscriptions per stalled client. Multiplies their event rate:
    /// the kernel absorbs megabytes for a non-reading peer (tcp_wmem
    /// autotunes sndbuf up to ~4 MiB), so the per-client rate must be
    /// high enough to exhaust that slack — and reach the server's own
    /// outbox budget — within seconds.
    pub stall_subs: u32,
    /// Server socket worker threads.
    pub workers: usize,
    /// Server per-session send budget (frames).
    pub send_budget: u32,
    /// Hub wall-clock tick pacing; smaller = higher event rate.
    pub tick_real: Duration,
}

impl StormConfig {
    /// CI profile: ~5 s, no storm phase, counters stay clean.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        StormConfig {
            seed,
            target_sessions: 560,
            min_sustained: 500,
            steady: Duration::from_secs(3),
            storm: false,
            burst: 0,
            corrupt_senders: 0,
            stalled: 0,
            stall_subs: 0,
            workers: 2,
            send_budget: 1024,
            tick_real: Duration::from_millis(20),
        }
    }

    /// Full profile: larger population, longer steady window, storm phase.
    #[must_use]
    pub fn flagship(seed: u64) -> Self {
        StormConfig {
            target_sessions: 640,
            steady: Duration::from_secs(8),
            storm: true,
            burst: 40,
            corrupt_senders: 8,
            stalled: 2,
            stall_subs: 1024,
            ..StormConfig::smoke(seed)
        }
    }
}

/// Everything `BENCH_serve.json` reports.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// `"smoke"` or `"flagship"`.
    pub mode: String,
    /// World seed.
    pub seed: u64,
    /// Sessions the ramp aimed for.
    pub target_sessions: u64,
    /// Concurrency floor `passed` enforces at the end of steady.
    pub min_sustained: u64,
    /// Server-observed concurrent-session high-water mark.
    pub sessions_peak: u64,
    /// Active sessions at the end of the steady window.
    pub sessions_steady: u64,
    /// Total TCP connects the server saw.
    pub connects: u64,
    /// Ramp rate: sessions streaming per wall second.
    pub connects_per_s: f64,
    /// Wall seconds from first connect to full population streaming.
    pub ramp_s: f64,
    /// Steady-window length in wall seconds.
    pub steady_s: f64,
    /// Client-observed event deliveries across the whole run.
    pub events_total: u64,
    /// Client-observed steady-phase event rate.
    pub events_per_s: f64,
    /// SUBSCRIBE→SUBACK latency percentiles (hub-side, microseconds).
    pub query_ack_p50_us: u64,
    /// 95th percentile of the same.
    pub query_ack_p95_us: u64,
    /// 99th percentile of the same.
    pub query_ack_p99_us: u64,
    /// Median SUBSCRIBE→first-event latency (microseconds).
    pub first_event_p50_us: u64,
    /// Jain fairness index over per-client steady event counts (1.0 =
    /// perfectly even).
    pub fairness_jain: f64,
    /// Storm-phase connects that observed REJECT(Overloaded).
    pub client_rejects_observed: u64,
    /// SUBACK/EVENT frames a client received after sending a corrupted
    /// frame. Must be zero: CRC-invalid input never advances a session.
    pub corrupt_accepted: u64,
    /// Client-side framing errors / unexpected closes / sequence gaps.
    pub client_errors: u64,
    /// Server counter: connects shed at the door.
    pub rejected_overload: u64,
    /// Server counter: stalled sessions shed as slow consumers.
    pub slow_consumer_sheds: u64,
    /// Server counter: frames dropped on shed outboxes.
    pub events_dropped: u64,
    /// Server counter: sessions torn down for protocol violations.
    pub protocol_errors: u64,
    /// Server counter: worker/hub thread panics. Must be zero.
    pub panics: u64,
    /// Whether the storm run ran with the storm phase enabled.
    pub storm: bool,
}

impl StormReport {
    /// The acceptance gate `serve_storm` exits on.
    #[must_use]
    pub fn passed(&self) -> bool {
        let base = self.sessions_steady >= self.min_sustained
            && self.sessions_peak >= self.target_sessions
            && self.events_total > 0
            && self.corrupt_accepted == 0
            && self.client_errors == 0
            && self.fairness_jain >= 0.90
            && self.panics == 0;
        if self.storm {
            base && self.client_rejects_observed >= 1 && self.slow_consumer_sheds >= 1
        } else {
            // Happy path: nothing may have tripped a protocol error.
            base && self.protocol_errors == 0
        }
    }

    /// Serializes the report as a single flat JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .field_str("bench", "serve")
            .field_str("mode", &self.mode)
            .field_u64("seed", self.seed)
            .field_bool("passed", self.passed())
            .field_u64("target_sessions", self.target_sessions)
            .field_u64("min_sustained", self.min_sustained)
            .field_u64("sessions_peak", self.sessions_peak)
            .field_u64("sessions_steady", self.sessions_steady)
            .field_u64("connects", self.connects)
            .field_f64("connects_per_s", self.connects_per_s)
            .field_f64("ramp_s", self.ramp_s)
            .field_f64("steady_s", self.steady_s)
            .field_u64("events_total", self.events_total)
            .field_f64("events_per_s", self.events_per_s)
            .field_u64("query_ack_p50_us", self.query_ack_p50_us)
            .field_u64("query_ack_p95_us", self.query_ack_p95_us)
            .field_u64("query_ack_p99_us", self.query_ack_p99_us)
            .field_u64("first_event_p50_us", self.first_event_p50_us)
            .field_f64("fairness_jain", self.fairness_jain)
            .field_u64("client_rejects_observed", self.client_rejects_observed)
            .field_u64("corrupt_accepted", self.corrupt_accepted)
            .field_u64("client_errors", self.client_errors)
            .field_u64("rejected_overload", self.rejected_overload)
            .field_u64("slow_consumer_sheds", self.slow_consumer_sheds)
            .field_u64("events_dropped", self.events_dropped)
            .field_u64("protocol_errors", self.protocol_errors)
            .field_u64("panics", self.panics)
            .finish()
    }
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`, 1.0 when all equal.
#[must_use]
pub fn jain_index(counts: &[u64]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let sum: f64 = counts.iter().map(|&c| c as f64).sum();
    let sq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    if sq == 0.0 {
        return if sum == 0.0 { 1.0 } else { 0.0 };
    }
    (sum * sum) / (counts.len() as f64 * sq)
}

// ---------------------------------------------------------------------------
// The swarm: one thread multiplexing every steady client, non-blocking.
// ---------------------------------------------------------------------------

enum Phase {
    /// HELLO+SUBSCRIBE written; waiting for the SUBACK.
    AwaitAck,
    /// Receiving events.
    Streaming,
    /// Closed (by us or by the server); no longer pumped.
    Done,
}

struct SwarmClient {
    stream: TcpStream,
    reader: FrameReader,
    pending: Vec<u8>,
    phase: Phase,
    query_id: u32,
    next_seq: u64,
    events: u64,
    steady_events: u64,
}

#[derive(Default)]
struct PumpStats {
    /// Framing errors, unexpected closes/EOFs, sequence gaps, denied acks.
    errors: u64,
    /// Connect/handshake-write failures during ramp.
    connect_failures: u64,
    events_total: u64,
    steady_events: Vec<u64>,
    ramp_s: f64,
}

/// Cross-thread orchestration: the pump owns the sockets; the
/// orchestrator flips phases through these.
#[derive(Default)]
struct PumpShared {
    /// Pump → orchestrator: ramp finished (population streaming or timed
    /// out).
    ramp_done: AtomicBool,
    /// Orchestrator → pump: count steady events.
    steady_on: AtomicBool,
    /// Orchestrator → pump: close this many streaming clients cleanly.
    close_n: AtomicUsize,
    /// Orchestrator → pump: close everything and return.
    stop: AtomicBool,
    /// Pump → orchestrator: clients currently streaming.
    streaming: AtomicU64,
}

fn open_swarm_client(addr: SocketAddr, query_id: u32, seed: u64) -> std::io::Result<SwarmClient> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    // Pipeline HELLO and SUBSCRIBE in one write: the server processes
    // frames in order, so the SUBACK races nothing.
    let mut payload = SessionMsg::Hello(Hello {
        version: SESSION_VERSION,
        caps: CAP_ALL,
        recv_budget: 1024,
    })
    .encode()
    .to_vec();
    payload.extend_from_slice(&SessionMsg::Subscribe(Subscribe {
        query_id,
        scenario: SCENARIO_TESTBED,
        seed,
        type_id: ContextTypeId(0),
    })
    .encode());
    let mut stream = stream;
    stream.write_all(&payload)?;
    stream.set_nonblocking(true)?;
    Ok(SwarmClient {
        stream,
        reader: FrameReader::new(),
        pending: Vec::new(),
        phase: Phase::AwaitAck,
        query_id,
        next_seq: 0,
        events: 0,
        steady_events: 0,
    })
}

fn handle_frame(c: &mut SwarmClient, msg: SessionMsg, steady: bool, stats: &mut PumpStats) {
    match msg {
        SessionMsg::Accept(_) | SessionMsg::Pong { .. } => {}
        SessionMsg::SubAck(a) if a.accepted && a.query_id == c.query_id => {
            c.phase = Phase::Streaming;
        }
        SessionMsg::SubAck(_) => {
            stats.errors += 1;
            c.phase = Phase::Done;
        }
        SessionMsg::Event(e) => {
            if e.query_id != c.query_id || e.seq != c.next_seq {
                stats.errors += 1;
            }
            c.next_seq = e.seq + 1;
            c.events += 1;
            if steady {
                c.steady_events += 1;
            }
        }
        // The server only CLOSEs us for cause; during the run that is
        // always unexpected (our own closes drop the socket instead).
        SessionMsg::Close(_) => {
            stats.errors += 1;
            c.phase = Phase::Done;
        }
        _ => {
            stats.errors += 1;
            c.phase = Phase::Done;
        }
    }
}

/// One non-blocking pass over every live client: flush pending writes,
/// drain the socket, decode frames.
fn pump_pass(clients: &mut [SwarmClient], steady: bool, stats: &mut PumpStats) {
    let mut buf = [0u8; 8192];
    for c in clients.iter_mut() {
        if matches!(c.phase, Phase::Done) {
            continue;
        }
        while !c.pending.is_empty() {
            match c.stream.write(&c.pending) {
                Ok(0) => {
                    stats.errors += 1;
                    c.phase = Phase::Done;
                    break;
                }
                Ok(n) => {
                    c.pending.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    stats.errors += 1;
                    c.phase = Phase::Done;
                    break;
                }
            }
        }
        // Bounded read burst so one chatty socket cannot starve the rest.
        for _ in 0..4 {
            match c.stream.read(&mut buf) {
                Ok(0) => {
                    stats.errors += 1;
                    c.phase = Phase::Done;
                    break;
                }
                Ok(n) => c.reader.extend(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    stats.errors += 1;
                    c.phase = Phase::Done;
                    break;
                }
            }
        }
        loop {
            match c.reader.next_frame() {
                Ok(Some(msg)) => handle_frame(c, msg, steady, stats),
                Ok(None) => break,
                Err(_) => {
                    stats.errors += 1;
                    c.phase = Phase::Done;
                    break;
                }
            }
            if matches!(c.phase, Phase::Done) {
                break;
            }
        }
    }
}

/// Closes one streaming client cleanly (CLOSE frame, then drop) and
/// collects its counts.
fn close_one(clients: &mut Vec<SwarmClient>, stats: &mut PumpStats) {
    let Some(idx) = clients
        .iter()
        .rposition(|c| matches!(c.phase, Phase::Streaming))
    else {
        return;
    };
    let mut c = clients.swap_remove(idx);
    let _ = c.stream.write(
        &SessionMsg::Close(Close {
            reason: CloseReason::Normal,
        })
        .encode(),
    );
    stats.events_total += c.events;
    stats.steady_events.push(c.steady_events);
}

fn count_streaming(clients: &[SwarmClient]) -> u64 {
    clients
        .iter()
        .filter(|c| matches!(c.phase, Phase::Streaming))
        .count() as u64
}

fn pump_thread(
    addr: SocketAddr,
    target: usize,
    seed: u64,
    shared: &Arc<PumpShared>,
) -> PumpStats {
    let mut stats = PumpStats::default();
    let t0 = Instant::now();
    let mut clients: Vec<SwarmClient> = Vec::with_capacity(target);
    for i in 0..target {
        match open_swarm_client(addr, i as u32, seed) {
            Ok(c) => clients.push(c),
            Err(_) => stats.connect_failures += 1,
        }
        // Interleave pumping so early clients' streams never back up
        // while later ones are still connecting.
        if i % 32 == 31 {
            pump_pass(&mut clients, false, &mut stats);
        }
    }
    // Ramp completes when every surviving client is streaming.
    let ramp_deadline = Instant::now() + Duration::from_secs(60);
    loop {
        pump_pass(&mut clients, false, &mut stats);
        let streaming = count_streaming(&clients);
        shared.streaming.store(streaming, Ordering::Relaxed);
        let live = clients
            .iter()
            .filter(|c| !matches!(c.phase, Phase::Done))
            .count() as u64;
        if streaming == live || Instant::now() > ramp_deadline {
            break;
        }
        thread::sleep(Duration::from_millis(2));
    }
    stats.ramp_s = t0.elapsed().as_secs_f64();
    shared.ramp_done.store(true, Ordering::Release);

    // Main pumping loop: steady window, storm-phase close requests, stop.
    while !shared.stop.load(Ordering::Acquire) {
        let steady = shared.steady_on.load(Ordering::Relaxed);
        pump_pass(&mut clients, steady, &mut stats);
        shared
            .streaming
            .store(count_streaming(&clients), Ordering::Relaxed);
        let want = shared.close_n.swap(0, Ordering::Relaxed);
        for _ in 0..want {
            close_one(&mut clients, &mut stats);
        }
        thread::sleep(Duration::from_millis(5));
    }
    // Drain: close every remaining client and collect counts.
    while !clients.is_empty() {
        if matches!(clients.last().map(|c| &c.phase), Some(Phase::Streaming)) {
            close_one(&mut clients, &mut stats);
        } else {
            let c = clients.pop().expect("non-empty");
            stats.events_total += c.events;
            stats.steady_events.push(c.steady_events);
        }
    }
    stats
}

// ---------------------------------------------------------------------------
// Storm actors: short-lived blocking probes on the orchestrator thread.
// ---------------------------------------------------------------------------

/// Connects while the server is full; returns 1 if REJECT(Overloaded) was
/// observed synchronously.
fn burst_probe(addr: SocketAddr) -> u64 {
    let Ok(mut c) = Client::connect(addr, Some(Duration::from_secs(2))) else {
        return 0;
    };
    match c.recv() {
        Ok(SessionMsg::Reject(r)) if r.reason == RejectReason::Overloaded => 1,
        _ => 0,
    }
}

/// Handshakes, then sends a Subscribe with one bit flipped in the body.
/// Returns the number of SUBACK/EVENT frames seen afterwards — every one
/// is a CRC-invalid frame treated as valid, which must never happen.
fn corrupt_probe(addr: SocketAddr, seed: u64) -> u64 {
    let Ok(mut c) = Client::connect(addr, Some(Duration::from_secs(3))) else {
        return 0;
    };
    match c.hello(CAP_ALL, 64) {
        Ok(Handshake::Accepted(_)) => {}
        _ => return 0,
    }
    let mut bytes = SessionMsg::Subscribe(Subscribe {
        query_id: 999_999,
        scenario: SCENARIO_TESTBED,
        seed,
        type_id: ContextTypeId(0),
    })
    .encode()
    .to_vec();
    bytes[2] ^= 0x10; // inside the body: the CRC trailer must catch it
    if c.send_raw(&bytes).is_err() {
        return 0;
    }
    let mut accepted_after_corrupt = 0;
    loop {
        match c.recv() {
            Ok(SessionMsg::SubAck(_) | SessionMsg::Event(_)) => accepted_after_corrupt += 1,
            Ok(SessionMsg::Close(_)) | Err(_) => return accepted_after_corrupt,
            Ok(_) => {}
        }
    }
}

/// Opens a session that subscribes `subs` times and then never reads —
/// the server must shed it as a slow consumer.
fn open_stalled(
    addr: SocketAddr,
    seed: u64,
    base_query: u32,
    subs: u32,
) -> std::io::Result<TcpStream> {
    let mut s = TcpStream::connect(addr)?;
    s.set_nodelay(true)?;
    let mut payload = SessionMsg::Hello(Hello {
        version: SESSION_VERSION,
        caps: CAP_ALL,
        recv_budget: 1024,
    })
    .encode()
    .to_vec();
    for j in 0..subs {
        payload.extend_from_slice(&SessionMsg::Subscribe(Subscribe {
            query_id: base_query + j,
            scenario: SCENARIO_TESTBED,
            seed,
            type_id: ContextTypeId(0),
        })
        .encode());
    }
    s.write_all(&payload)?;
    Ok(s)
}

// ---------------------------------------------------------------------------
// The run.
// ---------------------------------------------------------------------------

/// Runs the storm profile end to end and returns the report.
///
/// # Panics
///
/// Panics if the loopback listener cannot bind or the pump thread dies —
/// both are environment failures a benchmark should surface loudly.
#[must_use]
pub fn run_storm(cfg: &StormConfig) -> StormReport {
    let server = Server::start(ServerConfig {
        workers: cfg.workers,
        max_sessions: cfg.target_sessions,
        send_budget: cfg.send_budget,
        idle_timeout: Duration::from_secs(30),
        hub: HubConfig {
            max_worlds: 2,
            tick_virtual: SimDuration::from_millis(200),
            tick_real: cfg.tick_real,
            sample_virtual: SimDuration::from_millis(200),
        },
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let metrics = Arc::clone(server.metrics());
    let addr = server.addr();

    let shared = Arc::new(PumpShared::default());
    let pump = {
        let shared = Arc::clone(&shared);
        let target = cfg.target_sessions;
        let seed = cfg.seed;
        thread::spawn(move || pump_thread(addr, target, seed, &shared))
    };

    // Ramp.
    let ramp_deadline = Instant::now() + Duration::from_secs(90);
    while !shared.ramp_done.load(Ordering::Acquire) && Instant::now() < ramp_deadline {
        thread::sleep(Duration::from_millis(10));
    }

    // Steady.
    shared.steady_on.store(true, Ordering::Relaxed);
    let steady_t0 = Instant::now();
    thread::sleep(cfg.steady);
    let sessions_steady = metrics.active_sessions.load(Ordering::Relaxed);
    shared.steady_on.store(false, Ordering::Relaxed);
    let steady_s = steady_t0.elapsed().as_secs_f64();

    // Storm.
    let mut client_rejects_observed = 0;
    let mut corrupt_accepted = 0;
    if cfg.storm {
        // Overload burst while the population still fills every slot.
        for _ in 0..cfg.burst {
            let seen = burst_probe(addr);
            client_rejects_observed += seen;
            if seen == 0 {
                // Not full any more (a client died); further probes would
                // each burn the recv timeout waiting for a REJECT that
                // cannot come.
                break;
            }
        }
        // Free slots for the corrupt and stalled actors.
        let free = cfg.corrupt_senders + cfg.stalled + 4;
        shared.close_n.store(free, Ordering::Relaxed);
        let deadline = Instant::now() + Duration::from_secs(10);
        while metrics.active_sessions.load(Ordering::Relaxed)
            > (cfg.target_sessions - cfg.corrupt_senders - cfg.stalled) as u64
            && Instant::now() < deadline
        {
            thread::sleep(Duration::from_millis(10));
        }
        for _ in 0..cfg.corrupt_senders {
            corrupt_accepted += corrupt_probe(addr, cfg.seed);
        }
        let stalled: Vec<TcpStream> = (0..cfg.stalled)
            .filter_map(|i| {
                open_stalled(addr, cfg.seed, 1_000_000 + i as u32 * cfg.stall_subs, cfg.stall_subs)
                    .ok()
            })
            .collect();
        let shed_deadline = Instant::now() + Duration::from_secs(30);
        while metrics.slow_consumer_sheds.load(Ordering::Relaxed) == 0
            && Instant::now() < shed_deadline
        {
            thread::sleep(Duration::from_millis(20));
        }
        drop(stalled);
    }

    // Teardown: drain the swarm, then the server.
    shared.stop.store(true, Ordering::Release);
    let stats = pump.join().expect("pump thread");
    let (p50, p95, p99) =
        metrics.with_ack_histogram(|h| (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99)));
    let first_event_p50_us = metrics.with_first_event_histogram(|h| h.quantile(0.50));
    let steady_events_total: u64 = stats.steady_events.iter().sum();
    let report = StormReport {
        mode: if cfg.storm { "flagship" } else { "smoke" }.into(),
        seed: cfg.seed,
        target_sessions: cfg.target_sessions as u64,
        min_sustained: cfg.min_sustained,
        sessions_peak: metrics.peak_sessions.load(Ordering::Relaxed),
        sessions_steady,
        connects: metrics.connects.load(Ordering::Relaxed),
        connects_per_s: if stats.ramp_s > 0.0 {
            cfg.target_sessions as f64 / stats.ramp_s
        } else {
            0.0
        },
        ramp_s: stats.ramp_s,
        steady_s,
        events_total: stats.events_total,
        events_per_s: if steady_s > 0.0 {
            steady_events_total as f64 / steady_s
        } else {
            0.0
        },
        query_ack_p50_us: p50,
        query_ack_p95_us: p95,
        query_ack_p99_us: p99,
        first_event_p50_us,
        fairness_jain: jain_index(&stats.steady_events),
        client_rejects_observed,
        corrupt_accepted,
        client_errors: stats.errors + stats.connect_failures,
        rejected_overload: metrics.rejected_overload.load(Ordering::Relaxed),
        slow_consumer_sheds: metrics.slow_consumer_sheds.load(Ordering::Relaxed),
        events_dropped: metrics.events_dropped.load(Ordering::Relaxed),
        protocol_errors: metrics.protocol_errors.load(Ordering::Relaxed),
        panics: metrics.panics.load(Ordering::Relaxed),
        storm: cfg.storm,
    };
    server.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_is_one_for_equal_counts_and_low_for_skew() {
        assert!((jain_index(&[100, 100, 100]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0, 0]) - 1.0).abs() < 1e-12);
        // One hog among idle clients: index collapses toward 1/n.
        let skew = jain_index(&[1000, 0, 0, 0]);
        assert!(skew < 0.3, "skewed counts must score poorly, got {skew}");
    }

    #[test]
    fn mini_storm_passes_end_to_end() {
        // A scaled-down smoke profile so the unit test stays fast while
        // still exercising ramp, steady, and the report path over TCP.
        let report = run_storm(&StormConfig {
            target_sessions: 24,
            min_sustained: 24,
            steady: Duration::from_millis(800),
            ..StormConfig::smoke(3)
        });
        assert!(report.passed(), "mini smoke must pass: {}", report.to_json());
        assert_eq!(report.sessions_peak, 24);
        assert_eq!(report.sessions_steady, 24);
        assert_eq!(report.client_errors, 0);
        assert_eq!(report.corrupt_accepted, 0);
        assert_eq!(report.protocol_errors, 0);
        assert_eq!(report.panics, 0);
        assert!(report.events_total > 0);
        assert!(report.fairness_jain >= 0.90);
        let json = report.to_json();
        assert!(json.contains("\"bench\":\"serve\""));
        assert!(json.contains("\"query_ack_p50_us\""));
    }
}

