//! # envirotrack-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§6) against the simulated EnviroTrack stack.
//!
//! | Paper result | Module | CLI |
//! |---|---|---|
//! | Fig. 3 — tracked tank trajectory | [`experiments::fig3`] | `repro fig3` |
//! | Fig. 4 — successful handovers | [`experiments::fig4`] | `repro fig4` |
//! | Table 1 — communication performance | [`experiments::table1`] | `repro table1` |
//! | Fig. 5 — timers vs. max trackable speed | [`experiments::fig5`] | `repro fig5` |
//! | Fig. 6 — CR:SR ratio vs. max trackable speed | [`experiments::fig6`] | `repro fig6` |
//! | Ablations (weights, timers, reliability) | [`experiments::ablations`] | `repro ablations` |
//!
//! Absolute numbers are not expected to match the MICA testbed; the
//! *shapes* (who wins, rough factors, where breakdowns happen) are the
//! reproduction target. See `EXPERIMENTS.md` at the workspace root for the
//! side-by-side record.

pub mod experiments;
pub mod harness;
pub mod plot;
pub mod soak;
pub mod storm;
pub mod sweep;
