//! Figure 4 — *Successful handovers*.
//!
//! Two tank speeds (the emulated 33 and 50 km/h) × two group-management
//! settings: heartbeats heard only within radio range of the leader
//! (`h = 0`) versus flooded one hop past the perimeter (`h = 1`). The
//! paper finds all handovers succeed with propagation; without it, "a
//! fraction of handovers will fail … unless target speed is slow".
//!
//! The failure mechanism needs the radio range to be comparable to the
//! sensing range (as on the indoor testbed): nodes ahead of the tank that
//! have never heard the leader mint spurious labels. We therefore run this
//! experiment at a testbed-like communication radius of 1.6 grids.

use crate::harness::{run_tracking, TrackingRun};
use crate::sweep::parallel_map;
use envirotrack_world::scenario::kmh_to_hops_per_s;

/// One bar of the figure.
#[derive(Debug, Clone)]
pub struct Fig4Bar {
    /// Tank speed label in km/h.
    pub speed_kmh: f64,
    /// Heartbeat flood TTL `h`.
    pub heartbeat_ttl: u8,
    /// Mean successful-handover percentage over the seeds.
    pub success_pct: f64,
    /// Total successful handovers across runs.
    pub handovers: usize,
    /// Total failed handovers (spurious labels) across runs.
    pub failures: usize,
}

/// The regenerated figure: four bars.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Bars in (speed, setting) order: 33/h1, 50/h1, 33/h0, 50/h0.
    pub bars: Vec<Fig4Bar>,
}

/// Runs the experiment over `seeds` independent runs per bar.
#[must_use]
pub fn run(seeds: u64) -> Fig4 {
    let combos: Vec<(f64, u8)> = vec![(33.0, 1), (50.0, 1), (33.0, 0), (50.0, 0)];
    let bars = parallel_map(combos, |&(kmh, ttl)| {
        let mut handovers = 0usize;
        let mut failures = 0usize;
        let mut pct_sum = 0.0;
        for seed in 0..seeds {
            let cfg = TrackingRun {
                cols: 14,
                rows: 3,
                lane_y: 1.0,
                // The emulated testbed speeds: 15 s/hop and 10 s/hop.
                speed_hops_per_s: kmh_to_hops_per_s(kmh),
                sensing_radius: 1.0,
                comm_radius: 1.6,
                // Indoor testbed radios are far lossier than the default.
                base_loss: 0.15,
                heartbeat_ttl: ttl,
                seed: seed * 7 + 1,
                ..TrackingRun::default()
            };
            let out = run_tracking(&cfg);
            handovers += out.handovers;
            failures += out.failed_handovers();
            pct_sum += 100.0 * out.handover_success_ratio();
        }
        Fig4Bar {
            speed_kmh: kmh,
            heartbeat_ttl: ttl,
            success_pct: pct_sum / seeds as f64,
            handovers,
            failures,
        }
    });
    Fig4 { bars }
}

/// Prints the figure as a table.
pub fn print(fig: &Fig4) {
    println!("Figure 4 — % successful context-label handovers");
    println!(
        "{:>12} {:>28} {:>12} {:>10} {:>9}",
        "tank speed", "setting", "success %", "handovers", "failures"
    );
    for bar in &fig.bars {
        let setting = if bar.heartbeat_ttl > 0 {
            "propagate past sensing radius"
        } else {
            "heartbeats only within radius"
        };
        println!(
            "{:>9} km/h {:>28} {:>11.1}% {:>10} {:>9}",
            bar.speed_kmh, setting, bar.success_pct, bar.handovers, bar.failures
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_beats_no_propagation_and_slow_beats_fast() {
        // Five seeds: the h=0 success gap between speeds is a few points
        // wide, so three-seed averages sit inside run-to-run noise.
        let fig = run(5);
        let get = |kmh: f64, ttl: u8| {
            fig.bars
                .iter()
                .find(|b| b.speed_kmh == kmh && b.heartbeat_ttl == ttl)
                .expect("bar exists")
                .success_pct
        };
        // With propagation, handovers essentially always succeed.
        assert!(get(33.0, 1) >= 95.0, "33 km/h with h=1: {}", get(33.0, 1));
        assert!(get(50.0, 1) >= 95.0, "50 km/h with h=1: {}", get(50.0, 1));
        // Without propagation, the faster tank fails more.
        assert!(
            get(50.0, 0) <= get(33.0, 0) + 5.0,
            "h=0: faster should not beat slower ({} vs {})",
            get(50.0, 0),
            get(33.0, 0)
        );
        // And the propagation setting must dominate at speed.
        assert!(
            get(50.0, 1) > get(50.0, 0),
            "h=1 must beat h=0 at 50 km/h ({} vs {})",
            get(50.0, 1),
            get(50.0, 0)
        );
    }
}
