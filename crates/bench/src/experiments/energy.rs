//! Energy extension: what does tracking responsiveness cost in battery?
//!
//! Not a figure in the paper — the paper notes only that "heartbeats are
//! bandwidth-consuming messages". On MICA motes, they are also
//! energy-consuming, and the heartbeat period is the knob that trades
//! tracking responsiveness (Fig. 5) against network lifetime. This
//! experiment sweeps the period on the standard crossing and reports the
//! fleet's marginal protocol energy, separating radio from CPU.

use envirotrack_core::network::{NetworkConfig, SensorNetwork};
use envirotrack_node::energy::EnergyMeter;
use envirotrack_sim::time::{SimDuration, Timestamp};
use envirotrack_world::scenario::TankScenario;

use crate::harness::tracker_program;
use crate::sweep::parallel_map;

/// One row of the sweep.
#[derive(Debug, Clone)]
pub struct EnergyRow {
    /// Heartbeat period in seconds.
    pub heartbeat_secs: f64,
    /// Fleet energy over the run, in millijoules.
    pub total_mj: f64,
    /// Radio share (tx + rx) in millijoules.
    pub radio_mj: f64,
    /// CPU share in millijoules.
    pub cpu_mj: f64,
    /// Energy of the hungriest single node, in millijoules.
    pub max_node_mj: f64,
}

/// The regenerated sweep.
#[derive(Debug, Clone)]
pub struct EnergySweep {
    /// Rows in ascending heartbeat period.
    pub rows: Vec<EnergyRow>,
    /// Virtual run length in seconds (same for every row).
    pub run_secs: f64,
}

/// Runs the sweep on the testbed crossing at the emulated 33 km/h.
#[must_use]
pub fn run() -> EnergySweep {
    let periods = [0.125, 0.25, 0.5, 1.0, 2.0];
    let horizon = Timestamp::from_secs(180);
    let rows = parallel_map(periods.to_vec(), |&p| {
        let scenario = TankScenario::default().with_speed_kmh(33.0).build();
        let mut cfg = NetworkConfig::default();
        cfg.middleware = cfg
            .middleware
            .with_heartbeat_period(SimDuration::from_secs_f64(p));
        let mut engine = SensorNetwork::build_engine(
            tracker_program(),
            scenario.deployment.clone(),
            scenario.environment,
            cfg,
            77,
        );
        engine.run_until(horizon);
        let world = engine.world();
        let total: EnergyMeter = world.energy_totals();
        let max_node_mj = scenario
            .deployment
            .ids()
            .map(|id| world.energy_at(id).total_millijoules())
            .fold(0.0, f64::max);
        EnergyRow {
            heartbeat_secs: p,
            total_mj: total.total_millijoules(),
            radio_mj: total.tx_millijoules() + total.rx_millijoules(),
            cpu_mj: total.cpu_millijoules(),
            max_node_mj,
        }
    });
    EnergySweep {
        rows,
        run_secs: 180.0,
    }
}

/// Prints the sweep.
pub fn print(sweep: &EnergySweep) {
    println!(
        "Energy extension — fleet marginal energy over a {}s crossing (20 motes)",
        sweep.run_secs
    );
    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>14}",
        "HB period (s)", "total (mJ)", "radio (mJ)", "CPU (mJ)", "max node (mJ)"
    );
    for r in &sweep.rows {
        println!(
            "{:>14} {:>12.1} {:>12.1} {:>12.1} {:>14.1}",
            r.heartbeat_secs, r.total_mj, r.radio_mj, r.cpu_mj, r.max_node_mj
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_heartbeats_cost_more_energy() {
        let sweep = run();
        assert_eq!(sweep.rows.len(), 5);
        // Energy decreases monotonically as the heartbeat period grows.
        for w in sweep.rows.windows(2) {
            assert!(
                w[0].total_mj > w[1].total_mj,
                "period {} ({} mJ) should cost more than {} ({} mJ)",
                w[0].heartbeat_secs,
                w[0].total_mj,
                w[1].heartbeat_secs,
                w[1].total_mj
            );
        }
        // Shares are positive and account for the total.
        for r in &sweep.rows {
            assert!(r.radio_mj > 0.0 && r.cpu_mj > 0.0);
            assert!((r.radio_mj + r.cpu_mj - r.total_mj).abs() < 1e-6);
            assert!(r.max_node_mj <= r.total_mj);
        }
    }
}
