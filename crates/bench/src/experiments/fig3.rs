//! Figure 3 — *Tracked Tank Trajectory*.
//!
//! The paper drives the emulated T-72 along the lane `y = 0.5` of a grid
//! field and plots the trajectory the pursuer reconstructs from the
//! tracking object's reports. The reported track hugs the real lane with
//! sub-grid error; "direction anomalies occur due to message loss which
//! causes sensor position aggregation to use a subset of reporting sensors
//! only".
//!
//! This module reruns that representative crossing and emits the two
//! series (real vs. reported).

use envirotrack_sim::time::Timestamp;
use envirotrack_world::geometry::Point;

use crate::harness::{run_tracking, TrackingRun};

/// The regenerated Figure-3 data.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// The lane the tank actually drove (`y` value).
    pub true_lane_y: f64,
    /// `(time, reported, actual)` triples in report order.
    pub points: Vec<(Timestamp, Point, Point)>,
    /// Mean reported-vs-actual distance.
    pub mean_error: f64,
    /// Maximum reported-vs-actual distance.
    pub max_error: f64,
    /// Labels the pursuer saw (coherence check: should be 1).
    pub labels_seen: usize,
}

/// Runs the representative Fig.-3 crossing (testbed parameters, emulated
/// 50 km/h = 10 s/hop).
#[must_use]
pub fn run(seed: u64) -> Fig3 {
    let cfg = TrackingRun {
        speed_hops_per_s: 0.1,
        seed,
        ..TrackingRun::default()
    };
    let out = run_tracking(&cfg);
    let points: Vec<(Timestamp, Point, Point)> = out
        .track
        .iter()
        .zip(out.truth.iter())
        .map(|(&(t, rep), &(_, act))| (t, rep, act))
        .collect();
    let max_error = points
        .iter()
        .map(|(_, r, a)| r.distance_to(*a))
        .fold(0.0, f64::max);
    Fig3 {
        true_lane_y: cfg.lane_y,
        points,
        mean_error: out.mean_error,
        max_error,
        labels_seen: out.labels_created - out.labels_suppressed,
    }
}

/// Prints the figure as aligned columns (time, reported x/y, actual x/y).
pub fn print(fig: &Fig3) {
    println!(
        "Figure 3 — tracked tank trajectory (real lane: y = {})",
        fig.true_lane_y
    );
    println!(
        "{:>10}  {:>8} {:>8}  {:>8} {:>8}  {:>7}",
        "time", "rep x", "rep y", "act x", "act y", "error"
    );
    for (t, rep, act) in &fig.points {
        println!(
            "{:>10.2}  {:>8.3} {:>8.3}  {:>8.3} {:>8.3}  {:>7.3}",
            t.as_secs_f64(),
            rep.x,
            rep.y,
            act.x,
            act.y,
            rep.distance_to(*act)
        );
    }
    println!(
        "mean error {:.3} grids, max error {:.3} grids, {} label(s)",
        fig.mean_error, fig.max_error, fig.labels_seen
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_hugs_the_real_lane() {
        let fig = run(3);
        assert!(
            fig.points.len() >= 8,
            "too few reports: {}",
            fig.points.len()
        );
        assert_eq!(
            fig.labels_seen, 1,
            "the paper's run keeps one coherent label"
        );
        // The paper's Fig. 3 shows reported y within roughly ±1 grid of the
        // 0.5 lane and x tracking the crossing.
        assert!(fig.mean_error < 1.0, "mean error {}", fig.mean_error);
        for (_, rep, _) in &fig.points {
            assert!(
                (rep.y - fig.true_lane_y).abs() <= 1.0,
                "reported y {} too far",
                rep.y
            );
        }
        // x must be monotone-ish overall (the track follows the crossing).
        let first_x = fig.points.first().map(|(_, r, _)| r.x).unwrap_or(0.0);
        let last_x = fig.points.last().map(|(_, r, _)| r.x).unwrap_or(0.0);
        assert!(
            last_x > first_x + 3.0,
            "track did not progress: {first_x} -> {last_x}"
        );
    }
}
