//! Figure 6 — *Effect of Sensory Radius on Maximum Trackable Speed*.
//!
//! With the relinquish optimisation on, sweep the ratio between the
//! communication radius (CR) and the sensing radius (SR). Expected shape:
//!
//! * for a given CR:SR ratio, larger events are trackable at faster
//!   speeds (fewer leadership handovers per distance travelled);
//! * the architecture **breaks down when CR:SR < 1** — nodes outside the
//!   leader's radio range also sense the event and concurrently form
//!   spurious groups, violating context-label coherence.

use envirotrack_sim::time::SimDuration;

use crate::harness::TrackingRun;
use crate::sweep::{max_trackable_speed, parallel_map};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// Communication radius ÷ sensing radius.
    pub cr_sr_ratio: f64,
    /// Sensing radius in grids.
    pub sensing_radius: f64,
    /// Max trackable speed in hops/s (relinquish mode).
    pub speed: f64,
}

/// The regenerated figure.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// All swept points.
    pub points: Vec<Fig6Point>,
}

/// The relinquish-mode run template behind each swept point; public so the
/// golden regression tests can pin single points without the full sweep.
#[must_use]
pub fn template(sr: f64, cr: f64, seed: u64) -> TrackingRun {
    TrackingRun {
        cols: 24,
        rows: 7,
        lane_y: 3.0,
        sensing_radius: sr,
        comm_radius: cr,
        heartbeat_period: SimDuration::from_millis(500),
        heartbeat_ttl: 1,
        relinquish: true,
        seed,
        ..TrackingRun::default()
    }
}

/// Runs the sweep over CR:SR ratios for two event sizes.
#[must_use]
pub fn run(votes: u32, resolution: f64) -> Fig6 {
    let ratios = [0.75, 1.0, 1.5, 2.0, 3.0, 4.0];
    let radii = [1.0, 2.0];
    let mut combos = Vec::new();
    for &sr in &radii {
        for &ratio in &ratios {
            combos.push((sr, ratio));
        }
    }
    let points = parallel_map(combos, |&(sr, ratio)| {
        let cr = sr * ratio;
        Fig6Point {
            cr_sr_ratio: ratio,
            sensing_radius: sr,
            speed: max_trackable_speed(&template(sr, cr, 23), votes, resolution),
        }
    });
    Fig6 { points }
}

/// Prints the figure as one row per ratio.
pub fn print(fig: &Fig6) {
    println!("Figure 6 — max trackable speed (hops/s) vs CR:SR ratio, relinquish mode");
    println!("{:>10} {:>16} {:>16}", "CR:SR", "radius 1", "radius 2");
    let mut ratios: Vec<f64> = fig.points.iter().map(|p| p.cr_sr_ratio).collect();
    ratios.sort_by(f64::total_cmp);
    ratios.dedup();
    for ratio in ratios {
        let get = |sr: f64| {
            fig.points
                .iter()
                .find(|p| p.cr_sr_ratio == ratio && p.sensing_radius == sr)
                .map_or(f64::NAN, |p| p.speed)
        };
        println!("{:>10} {:>16.2} {:>16.2}", ratio, get(1.0), get(2.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_tracking;

    #[test]
    fn sub_unit_ratio_breaks_coherence_even_for_slow_targets() {
        // CR:SR = 0.6: sensing nodes outside the leader's radio range form
        // concurrent spurious groups.
        let cfg = TrackingRun {
            speed_hops_per_s: 0.2,
            ..template(2.0, 1.2, 5)
        };
        let out = run_tracking(&cfg);
        assert!(
            !out.coherent(),
            "CR:SR < 1 must violate label coherence: {out:?}"
        );
    }

    #[test]
    fn comfortable_ratio_tracks_fine() {
        let cfg = TrackingRun {
            speed_hops_per_s: 0.2,
            ..template(1.0, 3.0, 5)
        };
        let out = run_tracking(&cfg);
        assert!(
            out.coherent(),
            "CR:SR = 3 at 0.2 hops/s must be coherent: {out:?}"
        );
    }
}
