//! One module per table/figure of the paper's evaluation, plus ablations.

pub mod ablations;
pub mod energy;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod scale;
pub mod table1;
