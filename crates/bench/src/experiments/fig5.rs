//! Figure 5 — *Effect of Timers on Maximum Trackable Speed*.
//!
//! The paper's stress test: with the communication radius fixed at 6 grids
//! and the sensing radius at 1 or 2 grids, sweep the leader heartbeat
//! period (receive/wait timers held at 2.1× / 4.2×) and measure the
//! maximum trackable speed in the **worst case** — leadership moves only
//! by takeover after leader failure (no relinquish). Expected shape:
//!
//! * trackable speed *rises* as heartbeats get faster (more responsive
//!   takeover) …
//! * … until a breakdown point (paper: ≈ 0.25–0.5 s periods) where CPU
//!   overload throttles the handoff machinery and speed *falls* again;
//! * larger sensory signatures track faster at every period;
//! * the **relinquish** optimisation is insensitive to the heartbeat
//!   period (flat reference line).

use envirotrack_sim::time::SimDuration;

use crate::harness::TrackingRun;
use crate::sweep::{max_trackable_speed, parallel_map};

/// One measured point.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Heartbeat period in seconds.
    pub heartbeat_secs: f64,
    /// Sensing radius in grids.
    pub sensing_radius: f64,
    /// Maximum trackable speed in hops/s (takeover mode).
    pub takeover_speed: f64,
}

/// The regenerated figure.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// The swept points, one per (period, radius).
    pub points: Vec<Fig5Point>,
    /// The relinquish-mode reference speeds per sensing radius
    /// `(radius, speed)` — expected flat across periods.
    pub relinquish_reference: Vec<(f64, f64)>,
}

/// The takeover-mode run template behind each swept point; public so the
/// golden regression tests can pin single points without the full sweep.
#[must_use]
pub fn takeover_template(heartbeat: SimDuration, sensing_radius: f64, seed: u64) -> TrackingRun {
    TrackingRun {
        cols: 24,
        rows: 5,
        lane_y: 2.0,
        sensing_radius,
        comm_radius: 6.0,
        heartbeat_period: heartbeat,
        heartbeat_ttl: 1,
        relinquish: false, // worst case: all handoffs via receive timeout
        // The paper's outer loop drives the whole stack at the heartbeat
        // rate (floored at 100 ms: ADC sampling cannot go faster) — this is
        // what turns small heartbeat periods into CPU load.
        sense_period: Some(heartbeat.max(SimDuration::from_millis(100))),
        seed,
        ..TrackingRun::default()
    }
}

/// Runs the sweep. `votes` = runs per probed speed (majority decides),
/// `resolution` = bisection resolution in hops/s.
#[must_use]
pub fn run(votes: u32, resolution: f64) -> Fig5 {
    let periods = [0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0, 2.0];
    let radii = [1.0, 2.0];
    let mut combos = Vec::new();
    for &r in &radii {
        for &p in &periods {
            combos.push((p, r));
        }
    }
    let points = parallel_map(combos, |&(p, r)| {
        let template = takeover_template(SimDuration::from_secs_f64(p), r, 42);
        Fig5Point {
            heartbeat_secs: p,
            sensing_radius: r,
            takeover_speed: max_trackable_speed(&template, votes, resolution),
        }
    });
    let relinquish_reference = parallel_map(radii.to_vec(), |&r| {
        let template = TrackingRun {
            relinquish: true,
            ..takeover_template(SimDuration::from_millis(500), r, 42)
        };
        (r, max_trackable_speed(&template, votes, resolution))
    });
    Fig5 {
        points,
        relinquish_reference,
    }
}

/// Prints the figure as one row per heartbeat period.
pub fn print(fig: &Fig5) {
    println!("Figure 5 — max trackable speed (hops/s) vs heartbeat period, takeover mode");
    println!(
        "{:>14} {:>16} {:>16}",
        "HB period (s)", "radius 1", "radius 2"
    );
    let mut periods: Vec<f64> = fig.points.iter().map(|p| p.heartbeat_secs).collect();
    periods.sort_by(f64::total_cmp);
    periods.dedup();
    for p in periods {
        let get = |r: f64| {
            fig.points
                .iter()
                .find(|pt| pt.heartbeat_secs == p && pt.sensing_radius == r)
                .map_or(f64::NAN, |pt| pt.takeover_speed)
        };
        println!("{:>14} {:>16.2} {:>16.2}", p, get(1.0), get(2.0));
    }
    for (r, v) in &fig.relinquish_reference {
        println!("relinquish reference (radius {r}): {v:.2} hops/s (period-independent)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::max_trackable_speed;

    /// A cheap two-point sanity check instead of the full sweep: the
    /// responsive heartbeat must track substantially faster than the
    /// sluggish one in takeover mode.
    #[test]
    fn faster_heartbeats_track_faster_targets() {
        let slow = max_trackable_speed(
            &takeover_template(SimDuration::from_secs(2), 1.0, 9),
            1,
            0.25,
        );
        let fast = max_trackable_speed(
            &takeover_template(SimDuration::from_millis(250), 1.0, 9),
            1,
            0.25,
        );
        assert!(
            fast > slow,
            "250 ms heartbeats ({fast} hops/s) must beat 2 s heartbeats ({slow} hops/s)"
        );
    }

    #[test]
    fn overload_breakdown_at_tiny_periods() {
        // Below the breakdown point, even slow targets cannot be tracked:
        // the CPU-saturated handoff machinery spawns disconnected groups.
        let v = max_trackable_speed(
            &takeover_template(SimDuration::from_micros(31_250), 1.0, 13),
            1,
            0.25,
        );
        let healthy = max_trackable_speed(
            &takeover_template(SimDuration::from_micros(62_500), 1.0, 13),
            1,
            0.25,
        );
        assert!(
            v < healthy,
            "31 ms heartbeats ({v} hops/s) must underperform 62.5 ms ({healthy} hops/s): the CPU breakdown"
        );
    }

    #[test]
    fn larger_signatures_track_faster() {
        let small = max_trackable_speed(
            &takeover_template(SimDuration::from_millis(500), 1.0, 11),
            1,
            0.25,
        );
        let large = max_trackable_speed(
            &takeover_template(SimDuration::from_millis(500), 2.0, 11),
            1,
            0.25,
        );
        assert!(
            large >= small,
            "radius 2 ({large} hops/s) must track at least as fast as radius 1 ({small})"
        );
    }
}
