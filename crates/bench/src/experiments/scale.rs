//! Scale trajectory (`BENCH_scale.json`): wall-clock and event throughput
//! as the field grows to 10k+ nodes.
//!
//! Not a paper figure — an engineering benchmark that pins the scaling
//! work: the spatial-grid medium (O(n·deg) neighbor construction instead
//! of the all-pairs scan) and the shared-payload broadcast walk (one
//! decode per transmission instead of one per receiver). Each point runs
//! the Figure-2 tracking program on a [`ScaleScenario`] field for a fixed
//! virtual horizon and reports kernel events per wall-second, so node
//! counts are directly comparable.
//!
//! [`construction_timing`] times the neighbor-table build under both
//! [`NeighborStrategy`] variants on the same deployment, asserting the
//! tables are identical before trusting the clock — the speedup number in
//! the JSON is therefore also an equivalence witness.

use std::time::Instant;

use envirotrack_core::events::SystemEvent;
use envirotrack_core::network::{NetworkConfig, SensorNetwork};
use envirotrack_core::report::telemetry_to_jsonl;
use envirotrack_core::shard::{run_sharded, MediumMode};
use envirotrack_core::wire::WireCodec;
use envirotrack_sim::time::{SimDuration, Timestamp};
use envirotrack_world::grid::{neighbor_lists_with, NeighborStrategy};
use envirotrack_world::scenario::ScaleScenario;

use crate::harness::{tracker_program, TRACKER};

/// One configured scale point: a `nodes`-strong field driven for a fixed
/// virtual horizon.
#[derive(Debug, Clone)]
pub struct ScaleRun {
    /// Field size in nodes.
    pub nodes: u32,
    /// Concurrent targets crossing on parallel lanes.
    pub targets: u32,
    /// Target speed in hops/s. The default is far above the paper's road
    /// speeds on purpose: a fast target keeps heartbeats, reports and
    /// handovers churning for the whole (short) horizon, so the benchmark
    /// exercises the broadcast path rather than an idle field.
    pub speed_hops_per_s: f64,
    /// Radio communication radius in grid units. Kept small relative to
    /// the field so the network stays genuinely multi-hop at every size.
    pub comm_radius: f64,
    /// Virtual time to simulate. Fixed across node counts so events/sec
    /// compares apples to apples.
    pub horizon: SimDuration,
    /// Neighbor-table construction strategy.
    pub topology: NeighborStrategy,
    /// Wire codec serialising every frame. The radio charges the
    /// canonical binary length either way, so this toggle must not move a
    /// single event — it exists to cross-check the codecs against each
    /// other at scale.
    pub codec: WireCodec,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScaleRun {
    /// 1000 nodes, 4 targets, comm radius 2.5, 10 virtual seconds.
    fn default() -> Self {
        ScaleRun {
            nodes: 1000,
            targets: 4,
            speed_hops_per_s: 1.0,
            comm_radius: 2.5,
            horizon: SimDuration::from_secs(10),
            topology: NeighborStrategy::Grid,
            codec: WireCodec::Binary,
            seed: 1,
        }
    }
}

/// The measured outcome of one scale point.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Field size in nodes.
    pub nodes: u32,
    /// Wall seconds to build the network (medium, routing, node state).
    pub build_wall_s: f64,
    /// Wall seconds the event loop ran.
    pub run_wall_s: f64,
    /// Kernel events executed over the horizon.
    pub events: u64,
    /// Events per wall-second of event-loop time.
    pub events_per_sec: f64,
    /// Context labels minted for the tracked targets.
    pub labels_created: u64,
    /// Leadership handovers observed.
    pub handovers: u64,
    /// Bytes serialised on air over the horizon (preamble + header +
    /// canonical payload, summed across frame kinds).
    pub bytes_on_air: u64,
    /// Payload-buffer bytes carried by those frames: equals the payload
    /// share of `bytes_on_air` under the binary codec, and what the JSON
    /// rendering costs under the debug codec — the per-run side of the
    /// binary-vs-JSON frame-size comparison.
    pub payload_bytes: u64,
    /// The virtual horizon, in seconds.
    pub sim_horizon_s: f64,
}

/// Runs one scale point and audits it.
#[must_use]
pub fn run_scale(cfg: &ScaleRun) -> ScalePoint {
    let scenario = ScaleScenario {
        nodes: cfg.nodes,
        targets: cfg.targets,
        speed_hops_per_s: cfg.speed_hops_per_s,
        seed: cfg.seed,
        ..ScaleScenario::default()
    }
    .build();
    let mut net_cfg = NetworkConfig::default();
    net_cfg.radio = net_cfg.radio.with_comm_radius(cfg.comm_radius);
    net_cfg.radio.topology = cfg.topology;
    net_cfg.radio.codec = cfg.codec;
    // Same footprint coupling as the tracking harness: cross-label
    // proximity only matters within one stimulus's reach.
    net_cfg.middleware.proximity_radius = 3.0;

    let build_start = Instant::now();
    let mut engine = SensorNetwork::build_engine(
        tracker_program(),
        scenario.deployment,
        scenario.environment,
        net_cfg,
        cfg.seed,
    );
    let build_wall_s = build_start.elapsed().as_secs_f64();

    let run_start = Instant::now();
    engine.run_until(Timestamp::ZERO + cfg.horizon);
    let run_wall_s = run_start.elapsed().as_secs_f64();

    let world = engine.world();
    let events = world.telemetry().counter("kernel.events");
    let labels_created = world.events().labels_created(TRACKER).len() as u64;
    let handovers = world
        .events()
        .count(|e| matches!(e, SystemEvent::LeaderHandover { .. })) as u64;
    ScalePoint {
        nodes: cfg.nodes,
        build_wall_s,
        run_wall_s,
        events,
        events_per_sec: if run_wall_s > 0.0 {
            events as f64 / run_wall_s
        } else {
            0.0
        },
        labels_created,
        handovers,
        bytes_on_air: world.net_stats().bytes_on_air(),
        payload_bytes: world.net_stats().payload_bytes(),
        sim_horizon_s: cfg.horizon.as_secs_f64(),
    }
}

/// The differential codec audit: the same scale point run under both wire
/// codecs, with byte-level evidence that the toggle is free and the
/// binary format is smaller.
#[derive(Debug, Clone)]
pub struct CodecComparison {
    /// Field size in nodes.
    pub nodes: u32,
    /// Bytes on air (identical in both runs by construction: the radio
    /// always charges the canonical binary frame).
    pub bytes_on_air: u64,
    /// Payload bytes when frames carry the binary encoding.
    pub binary_payload_bytes: u64,
    /// Payload bytes when frames carry the JSON debug encoding of the
    /// *same* messages (the runs are event-identical).
    pub json_payload_bytes: u64,
    /// `json_payload_bytes / binary_payload_bytes` — the frame-size
    /// reduction the binary codec buys on a real message mix.
    pub json_over_binary: f64,
}

/// Runs one scale point under both codecs and asserts the simulations are
/// *byte-identical*: same telemetry JSONL, same run record. Any semantic
/// disagreement between the codecs changes what receivers decode and
/// fails here loudly.
///
/// # Panics
///
/// Panics if the two runs diverge in telemetry or run record, or if the
/// JSON frames are not at least 2× the binary frames.
#[must_use]
pub fn codec_comparison(cfg: &ScaleRun) -> CodecComparison {
    let run = |codec: WireCodec| crosscheck_dump(&ScaleRun { codec, ..cfg.clone() });
    let (tel_bin, rec_bin, air_bin, pay_bin) = run(WireCodec::Binary);
    let (tel_json, rec_json, air_json, pay_json) = run(WireCodec::Json);
    assert_eq!(
        tel_bin, tel_json,
        "codec toggle changed the telemetry stream"
    );
    assert_eq!(rec_bin, rec_json, "codec toggle changed the run record");
    assert_eq!(air_bin, air_json, "codec toggle changed charged airtime");
    let ratio = pay_json as f64 / pay_bin.max(1) as f64;
    assert!(
        ratio >= 2.0,
        "json frames must cost ≥ 2× binary: {pay_json} vs {pay_bin}"
    );
    CodecComparison {
        nodes: cfg.nodes,
        bytes_on_air: air_bin,
        binary_payload_bytes: pay_bin,
        json_payload_bytes: pay_json,
        json_over_binary: ratio,
    }
}

/// Runs one scale point and returns its full observable output — the
/// telemetry JSONL stream, the run-record JSON line, and the byte
/// counters. This is what the verify.sh codec cross-check smoke diffs
/// byte-for-byte between two codecs.
#[must_use]
pub fn crosscheck_dump(cfg: &ScaleRun) -> (String, String, u64, u64) {
    let scenario = ScaleScenario {
        nodes: cfg.nodes,
        targets: cfg.targets,
        speed_hops_per_s: cfg.speed_hops_per_s,
        seed: cfg.seed,
        ..ScaleScenario::default()
    }
    .build();
    let mut net_cfg = NetworkConfig::default();
    net_cfg.radio = net_cfg.radio.with_comm_radius(cfg.comm_radius);
    net_cfg.radio.topology = cfg.topology;
    net_cfg.radio.codec = cfg.codec;
    net_cfg.middleware.proximity_radius = 3.0;
    let mut engine = SensorNetwork::build_engine(
        tracker_program(),
        scenario.deployment,
        scenario.environment,
        net_cfg,
        cfg.seed,
    );
    engine.run_until(Timestamp::ZERO + cfg.horizon);
    let world = engine.world();
    let telemetry = telemetry_to_jsonl(world.telemetry());
    let record = world.run_record(cfg.seed, cfg.horizon, 0).to_json();
    let stats = world.net_stats();
    (telemetry, record, stats.bytes_on_air(), stats.payload_bytes())
}

/// One sharded scale point: the same tracking field advanced by `shards`
/// lock-step shard threads (see [`envirotrack_core::shard`]).
#[derive(Debug, Clone)]
pub struct ShardScalePoint {
    /// Field size in nodes.
    pub nodes: u32,
    /// Shard (thread) count.
    pub shards: usize,
    /// How resolved transmissions were routed to shards.
    pub medium: MediumMode,
    /// Wall seconds for the whole sharded run: per-shard world builds,
    /// every epoch barrier, and the final merge.
    pub run_wall_s: f64,
    /// Kernel events summed over the shards. Diagnostic only: each routed
    /// transmission is one ingestion event per interested shard, so this
    /// varies with shard count and medium mode and is excluded from the
    /// byte-compared output.
    pub events: u64,
    /// `events / run_wall_s`.
    pub events_per_sec: f64,
    /// Context labels minted (merged run record).
    pub labels_created: u64,
    /// Leadership handovers (merged run record).
    pub handovers: u64,
    /// Intents collected across all epoch barriers (the merged batches).
    pub merged_intents: u64,
    /// Total shard replay deliveries (`routed + broadcast`): the channel
    /// work the partitioned medium reduces below `shards × resolved`.
    pub replayed_intents: u64,
    /// The full observable output — the run-record JSON line followed by
    /// the merged telemetry JSONL — what must be byte-identical across
    /// shard counts *and* medium modes.
    pub dump: String,
}

/// Runs one scale point under the sharded kernel and returns the merged
/// audit. Sharded runs are their own golden family (every frame carries
/// the uniform epoch pipeline latency), so `dump` compares across shard
/// counts and medium modes, not against [`crosscheck_dump`].
#[must_use]
pub fn run_scale_sharded(cfg: &ScaleRun, shards: usize, medium: MediumMode) -> ShardScalePoint {
    let scenario = ScaleScenario {
        nodes: cfg.nodes,
        targets: cfg.targets,
        speed_hops_per_s: cfg.speed_hops_per_s,
        seed: cfg.seed,
        ..ScaleScenario::default()
    }
    .build();
    let mut net_cfg = NetworkConfig::default();
    net_cfg.radio = net_cfg.radio.with_comm_radius(cfg.comm_radius);
    net_cfg.radio.topology = cfg.topology;
    net_cfg.radio.codec = cfg.codec;
    net_cfg.middleware.proximity_radius = 3.0;

    let run_start = Instant::now();
    let run = run_sharded(
        &tracker_program(),
        &scenario.deployment,
        &scenario.environment,
        &net_cfg,
        cfg.seed,
        shards,
        Timestamp::ZERO + cfg.horizon,
        &[],
        medium,
    );
    let run_wall_s = run_start.elapsed().as_secs_f64();
    ShardScalePoint {
        nodes: cfg.nodes,
        shards,
        medium,
        run_wall_s,
        events: run.events_processed,
        events_per_sec: if run_wall_s > 0.0 {
            run.events_processed as f64 / run_wall_s
        } else {
            0.0
        },
        labels_created: run.record.labels_created,
        handovers: run.record.handovers,
        merged_intents: run.intents.merged,
        replayed_intents: run.intents.replayed(),
        dump: format!("{}\n{}", run.record.to_json(), run.telemetry_jsonl),
    }
}

/// Grid-vs-brute-force neighbor-table construction timing on one
/// deployment.
#[derive(Debug, Clone)]
pub struct ConstructionTiming {
    /// Deployment size in nodes.
    pub nodes: u32,
    /// Fastest grid build over the measured repetitions, in milliseconds.
    pub grid_ms: f64,
    /// Fastest all-pairs build over the measured repetitions, in
    /// milliseconds.
    pub brute_ms: f64,
    /// `brute_ms / grid_ms`.
    pub speedup: f64,
}

/// Times [`neighbor_lists_with`] under both strategies on a
/// [`ScaleScenario`] deployment of `nodes`, taking the fastest of `reps`
/// repetitions each.
///
/// # Panics
///
/// Panics if the two strategies disagree on any neighbor list — the
/// timing is only meaningful for equivalent outputs.
#[must_use]
pub fn construction_timing(nodes: u32, reps: u32) -> ConstructionTiming {
    let radius = ScaleRun::default().comm_radius;
    let deployment = ScaleScenario {
        nodes,
        ..ScaleScenario::default()
    }
    .build()
    .deployment;

    let grid = neighbor_lists_with(&deployment, radius, NeighborStrategy::Grid);
    let brute = neighbor_lists_with(&deployment, radius, NeighborStrategy::BruteForce);
    assert_eq!(
        grid, brute,
        "grid and brute-force neighbor tables must be identical"
    );

    let time_ms = |strategy: NeighborStrategy| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            std::hint::black_box(neighbor_lists_with(&deployment, radius, strategy));
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let grid_ms = time_ms(NeighborStrategy::Grid);
    let brute_ms = time_ms(NeighborStrategy::BruteForce);
    ConstructionTiming {
        nodes,
        grid_ms,
        brute_ms,
        speedup: if grid_ms > 0.0 { brute_ms / grid_ms } else { 0.0 },
    }
}

/// Prints the trajectory as an aligned table.
pub fn print(points: &[ScalePoint], construction: &ConstructionTiming) {
    println!(
        "BENCH scale — {} targets, {:.1} comm radius, grid medium",
        ScaleRun::default().targets,
        ScaleRun::default().comm_radius
    );
    println!(
        "  {:>7}  {:>9}  {:>9}  {:>10}  {:>12}  {:>6}  {:>9}  {:>12}",
        "nodes", "build s", "run s", "events", "events/s", "labels", "handovers", "bytes on air"
    );
    for p in points {
        println!(
            "  {:>7}  {:>9.3}  {:>9.3}  {:>10}  {:>12.0}  {:>6}  {:>9}  {:>12}",
            p.nodes,
            p.build_wall_s,
            p.run_wall_s,
            p.events,
            p.events_per_sec,
            p.labels_created,
            p.handovers,
            p.bytes_on_air
        );
    }
    println!(
        "  construction @ {} nodes: grid {:.2} ms vs brute {:.2} ms ({:.1}x)",
        construction.nodes, construction.grid_ms, construction.brute_ms, construction.speedup
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScaleRun {
        // 5 virtual seconds: the targets start 1.5 hops outside the field
        // (1 hop/s), so shorter horizons end before any group forms.
        ScaleRun {
            nodes: 200,
            targets: 2,
            horizon: SimDuration::from_secs(5),
            ..ScaleRun::default()
        }
    }

    #[test]
    fn scale_points_are_deterministic_and_busy() {
        let a = run_scale(&small());
        let b = run_scale(&small());
        assert_eq!(a.events, b.events);
        assert_eq!(a.labels_created, b.labels_created);
        assert_eq!(a.handovers, b.handovers);
        assert!(a.events > 0, "a 200-node field must execute events");
        assert!(a.labels_created >= 1, "targets should be detected: {a:?}");
    }

    #[test]
    fn topology_toggle_does_not_change_the_audit() {
        let grid = run_scale(&small());
        let brute = run_scale(&ScaleRun {
            topology: NeighborStrategy::BruteForce,
            ..small()
        });
        assert_eq!(grid.events, brute.events);
        assert_eq!(grid.labels_created, brute.labels_created);
        assert_eq!(grid.handovers, brute.handovers);
    }

    #[test]
    fn codec_toggle_does_not_change_the_audit() {
        let binary = run_scale(&small());
        let json = run_scale(&ScaleRun {
            codec: WireCodec::Json,
            ..small()
        });
        assert_eq!(binary.events, json.events);
        assert_eq!(binary.labels_created, json.labels_created);
        assert_eq!(binary.handovers, json.handovers);
        // The charged airtime is the canonical binary size in both modes;
        // only the payload-buffer accounting shows the JSON cost.
        assert_eq!(binary.bytes_on_air, json.bytes_on_air);
        assert!(binary.bytes_on_air > 0, "a busy field sends bytes");
        assert!(
            json.payload_bytes >= binary.payload_bytes * 2,
            "json {} vs binary {}",
            json.payload_bytes,
            binary.payload_bytes
        );
    }

    #[test]
    fn codec_comparison_verifies_byte_identity() {
        let cmp = codec_comparison(&small());
        assert!(cmp.json_over_binary >= 2.0, "{cmp:?}");
        assert!(cmp.bytes_on_air > 0);
    }

    #[test]
    fn shard_count_does_not_change_the_sharded_audit() {
        let one = run_scale_sharded(&small(), 1, MediumMode::Replicated);
        let two = run_scale_sharded(&small(), 2, MediumMode::Partitioned);
        assert!(
            one.labels_created >= 1,
            "the sharded run must still track targets: {one:?}"
        );
        assert_eq!(
            one.dump, two.dump,
            "shard count or medium mode leaked into the output"
        );
        // The pin must cover live protocol traffic, not an idle field.
        // (Trace events are excluded from the merged stream by design, so
        // look at a frame counter, not `group.hb` traces.)
        assert!(one.dump.contains("net.k1.tx"));
    }

    #[test]
    fn partitioned_medium_reduces_replay_work() {
        let shards = 4;
        let replicated = run_scale_sharded(&small(), shards, MediumMode::Replicated);
        let partitioned = run_scale_sharded(&small(), shards, MediumMode::Partitioned);
        assert_eq!(
            replicated.dump, partitioned.dump,
            "routing must not change the observable output"
        );
        assert!(
            partitioned.replayed_intents > 0,
            "a busy field must route intents: {partitioned:?}"
        );
        // The acceptance bound: strictly fewer shard deliveries than the
        // full N-fold replay of the merged batches.
        assert!(
            partitioned.replayed_intents < shards as u64 * partitioned.merged_intents,
            "interest routing saved nothing: {} replayed vs {} merged × {} shards",
            partitioned.replayed_intents,
            partitioned.merged_intents,
            shards
        );
        assert!(
            partitioned.replayed_intents < replicated.replayed_intents,
            "partitioned must replay strictly less than replicated"
        );
    }

    #[test]
    fn grid_construction_beats_brute_force() {
        let t = construction_timing(1500, 2);
        assert!(
            t.speedup > 1.0,
            "grid must beat the all-pairs scan at 1500 nodes: {t:?}"
        );
    }
}
