//! Ablations of the design choices DESIGN.md calls out.
//!
//! The paper motivates several mechanisms qualitatively; these experiments
//! quantify what each one buys on the standard tank crossing:
//!
//! * **relinquish** — explicit handover versus timeout-only takeover;
//! * **wait timer multiple** — the paper's 4.2× versus shorter memories;
//! * **link reliability** — per-hop ACK/retransmit for unicast routing
//!   versus fire-and-forget (affects base-report delivery, not coherence).

use envirotrack_core::network::{NetworkConfig, SensorNetwork};
use envirotrack_sim::time::{SimDuration, Timestamp};
use envirotrack_world::scenario::TankScenario;

use crate::harness::{run_tracking, tracker_program, TrackingRun, TRACKER};
use crate::sweep::parallel_map;

/// One ablation row: a named variant and its metrics.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant name.
    pub name: String,
    /// Mean handovers per run.
    pub handovers: f64,
    /// Mean spurious labels per run.
    pub spurious: f64,
    /// Mean pursuer reports per run.
    pub reports: f64,
    /// Fraction of runs that stayed coherent.
    pub coherent_fraction: f64,
}

/// The full ablation table.
#[derive(Debug, Clone)]
pub struct Ablations {
    /// All rows.
    pub rows: Vec<AblationRow>,
}

/// A named run-template factory for the sweep table.
type Variant = (&'static str, Box<dyn Fn(u64) -> TrackingRun + Sync + Send>);

fn measure(name: &str, seeds: u64, make: impl Fn(u64) -> TrackingRun) -> AblationRow {
    let mut handovers = 0.0;
    let mut spurious = 0.0;
    let mut reports = 0.0;
    let mut coherent = 0u32;
    for seed in 0..seeds {
        let out = run_tracking(&make(seed));
        handovers += out.handovers as f64;
        spurious += out.failed_handovers() as f64;
        reports += out.track.len() as f64;
        coherent += u32::from(out.coherent());
    }
    let n = seeds as f64;
    AblationRow {
        name: name.to_owned(),
        handovers: handovers / n,
        spurious: spurious / n,
        reports: reports / n,
        coherent_fraction: f64::from(coherent) / n,
    }
}

/// A moderately challenging baseline: testbed radio range, a target slow
/// enough that leader tenure exceeds the 5 s reporter period (so the
/// pursuer actually hears reports), lossy indoor radio.
fn base(seed: u64) -> TrackingRun {
    TrackingRun {
        cols: 14,
        rows: 3,
        lane_y: 1.0,
        speed_hops_per_s: 0.2,
        comm_radius: 1.6,
        base_loss: 0.1,
        seed: seed * 13 + 3,
        ..TrackingRun::default()
    }
}

/// Runs every ablation with `seeds` runs per variant.
#[must_use]
pub fn run(seeds: u64) -> Ablations {
    let variants: Vec<Variant> = vec![
        ("baseline (all mechanisms on)", Box::new(base)),
        (
            "no relinquish (takeover only)",
            Box::new(|s| TrackingRun {
                relinquish: false,
                ..base(s)
            }),
        ),
        (
            "no relinquish, fast target (0.5 hops/s)",
            Box::new(|s| TrackingRun {
                relinquish: false,
                speed_hops_per_s: 0.5,
                ..base(s)
            }),
        ),
        (
            "relinquish, fast target (0.5 hops/s)",
            Box::new(|s| TrackingRun {
                speed_hops_per_s: 0.5,
                ..base(s)
            }),
        ),
        (
            "no heartbeat flood (h = 0)",
            Box::new(|s| TrackingRun {
                heartbeat_ttl: 0,
                ..base(s)
            }),
        ),
    ];
    let mut rows = parallel_map(variants, |(name, make)| measure(name, seeds, make));
    rows.push(wait_timer_row(seeds));
    rows.push(link_reliability_row(seeds));
    Ablations { rows }
}

/// Wait-timer ablation: shrink the non-member memory to one heartbeat
/// period (below the receive timer — the configuration the paper warns
/// against) and count the spurious labels it spawns.
fn wait_timer_row(seeds: u64) -> AblationRow {
    let mut handovers = 0.0;
    let mut spurious = 0.0;
    let mut reports = 0.0;
    let mut coherent = 0u32;
    for seed in 0..seeds {
        // Takeover mode, where the wait/receive interplay matters: during
        // a takeover the group goes silent for a full receive timeout, and
        // short-memoried bystanders mint spurious labels.
        let cfg = TrackingRun {
            relinquish: false,
            speed_hops_per_s: 0.4,
            ..base(seed)
        };
        let out = run_with(&cfg, |nc| {
            // Keep validation happy but make memory barely longer than the
            // takeover timeout (paper default: twice it).
            nc.middleware.receive_timer_factor = 2.1;
            nc.middleware.wait_timer_factor = 2.2;
        });
        handovers += out.handovers as f64;
        spurious += out.failed_handovers() as f64;
        reports += out.track.len() as f64;
        coherent += u32::from(out.coherent());
    }
    let n = seeds as f64;
    AblationRow {
        name: "short wait timer (2.2x instead of 4.2x)".into(),
        handovers: handovers / n,
        spurious: spurious / n,
        reports: reports / n,
        coherent_fraction: f64::from(coherent) / n,
    }
}

/// Link-reliability ablation: disable per-hop ACKs and watch multi-hop
/// base reports evaporate while coherence (broadcast-only) is unaffected.
fn link_reliability_row(seeds: u64) -> AblationRow {
    let mut handovers = 0.0;
    let mut spurious = 0.0;
    let mut reports = 0.0;
    let mut coherent = 0u32;
    for seed in 0..seeds {
        let cfg = base(seed);
        let out = run_with(&cfg, |nc| {
            nc.link.enabled = false;
        });
        handovers += out.handovers as f64;
        spurious += out.failed_handovers() as f64;
        reports += out.track.len() as f64;
        coherent += u32::from(out.coherent());
    }
    let n = seeds as f64;
    AblationRow {
        name: "no link-layer ACKs on unicast hops".into(),
        handovers: handovers / n,
        spurious: spurious / n,
        reports: reports / n,
        coherent_fraction: f64::from(coherent) / n,
    }
}

/// Like [`run_tracking`] but with a hook to adjust the network config
/// (for knobs the [`TrackingRun`] template does not expose).
fn run_with(
    cfg: &TrackingRun,
    adjust: impl FnOnce(&mut NetworkConfig),
) -> crate::harness::TrackingOutcome {
    // Mirror run_tracking, with the extra adjustment hook.
    let scenario = TankScenario {
        cols: cfg.cols,
        rows: cfg.rows,
        speed_hops_per_s: cfg.speed_hops_per_s,
        sensing_radius: cfg.sensing_radius,
        lane_y: cfg.lane_y,
        approach: cfg.sensing_radius.max(1.0) + 0.5,
    }
    .build();
    let tank = scenario
        .environment
        .target(scenario.primary_target)
        .expect("tank")
        .clone();
    let crossing = tank.trajectory().duration().expect("finite path");

    let mut net_cfg = NetworkConfig::default();
    net_cfg.radio = net_cfg
        .radio
        .with_comm_radius(cfg.comm_radius)
        .with_base_loss(cfg.base_loss);
    net_cfg.middleware = net_cfg
        .middleware
        .with_heartbeat_period(cfg.heartbeat_period)
        .with_heartbeat_ttl(cfg.heartbeat_ttl)
        .with_relinquish(cfg.relinquish);
    net_cfg.middleware.proximity_radius = (2.5 * cfg.sensing_radius).max(3.0);
    if let Some(p) = cfg.sense_period {
        net_cfg.middleware.sense_period = p;
    }
    adjust(&mut net_cfg);

    let mut engine = SensorNetwork::build_engine(
        tracker_program(),
        scenario.deployment,
        scenario.environment,
        net_cfg,
        cfg.seed,
    );
    let horizon = Timestamp::ZERO + crossing + cfg.cooldown;
    let field_max_x = f64::from(cfg.cols - 1);
    let mut in_field = 0u32;
    let mut tracked = 0u32;
    let mut t = Timestamp::ZERO;
    while t < horizon {
        t = (t + SimDuration::from_secs_f64((0.5 / cfg.speed_hops_per_s).clamp(0.05, 1.0)))
            .min(horizon);
        engine.run_until(t);
        let pos = tank.position_at(t);
        if pos.x >= 0.0 && pos.x <= field_max_x {
            in_field += 1;
            let world = engine.world();
            let near = world.leaders_of_type(TRACKER).iter().any(|(n, _)| {
                world.deployment().position(*n).distance_to(pos) <= cfg.sensing_radius + 1.0
            });
            if near {
                tracked += 1;
            }
        }
    }
    let world = engine.world();
    let events = world.events();
    let labels_created = events.labels_created(TRACKER).len();
    let mut track = Vec::new();
    let mut truth = Vec::new();
    let mut err = 0.0;
    for (_, label_track) in world.base_log().tracks_of_type(TRACKER) {
        for (gt, p) in label_track {
            let actual = tank.position_at(gt);
            err += p.distance_to(actual);
            track.push((gt, p));
            truth.push((gt, actual));
        }
    }
    let stats = world.net_stats();
    let hb = stats.kind(envirotrack_core::wire::kinds::HEARTBEAT);
    let rpt = stats.kind(envirotrack_core::wire::kinds::REPORT);
    crate::harness::TrackingOutcome {
        labels_created,
        labels_suppressed: events.suppressed(TRACKER).len(),
        handovers: events.count(|e| {
            matches!(
                e,
                envirotrack_core::events::SystemEvent::LeaderHandover { .. }
            )
        }),
        tracked_fraction: if in_field == 0 {
            0.0
        } else {
            f64::from(tracked) / f64::from(in_field)
        },
        mean_error: if track.is_empty() {
            f64::NAN
        } else {
            err / track.len() as f64
        },
        track,
        truth,
        hb_tx: hb.tx,
        hb_loss: hb.pair_loss_ratio(),
        report_tx: rpt.tx,
        report_loss: rpt.pair_loss_ratio(),
        link_utilization: stats.link_utilization(
            horizon - Timestamp::ZERO,
            world.config().radio.bandwidth_bps,
        ),
        cpu: world.cpu_totals(),
        elapsed: horizon - Timestamp::ZERO,
    }
}

/// Prints the ablation table.
pub fn print(a: &Ablations) {
    println!("Ablations — mean per run over the standard crossing");
    println!(
        "{:>42} {:>10} {:>9} {:>9} {:>10}",
        "variant", "handovers", "spurious", "reports", "coherent"
    );
    for r in &a.rows {
        println!(
            "{:>42} {:>10.1} {:>9.1} {:>9.1} {:>9.0}%",
            r.name,
            r.handovers,
            r.spurious,
            r.reports,
            100.0 * r.coherent_fraction
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_coherent_and_reliability_matters_for_reports() {
        let a = run(3);
        let get = |name: &str| {
            a.rows
                .iter()
                .find(|r| r.name.starts_with(name))
                .unwrap_or_else(|| panic!("row {name} missing"))
        };
        let baseline = get("baseline");
        assert!(baseline.coherent_fraction >= 0.99, "{baseline:?}");
        // Without per-hop ACKs, fewer reports survive the multi-hop route
        // to the pursuer; coherence (broadcast-driven) is unaffected.
        let no_ack = get("no link-layer");
        assert!(
            no_ack.reports <= baseline.reports,
            "ACK-less routing cannot deliver more: {} vs {}",
            no_ack.reports,
            baseline.reports
        );
        assert!(
            no_ack.coherent_fraction >= 0.5,
            "coherence should not depend on ACKs"
        );
    }
}
