//! Table 1 — *Communication Performance Data*.
//!
//! For the correct (h = 1) setting at the two emulated tank speeds, the
//! paper reports, averaged over three independent runs:
//!
//! | Speed | % HB loss | % Msg loss | % Link util |
//! |---|---|---|---|
//! | 33 km/h | 7.08 | 3.05 | 2.54 |
//! | 50 km/h | 22.69 | 17.05 | 2.88 |
//!
//! The four take-aways to reproduce: (1) the system operates correctly in
//! the presence of loss; (2) loss comes from the unreliable medium, not
//! bandwidth exhaustion; (3) utilisation is a tiny fraction of capacity;
//! (4) utilisation grows only slightly with speed.

use crate::harness::{run_tracking, TrackingRun};
use crate::sweep::parallel_map;
use envirotrack_world::scenario::kmh_to_hops_per_s;

/// One row of the table.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Speed label in km/h.
    pub speed_kmh: f64,
    /// Mean heartbeat loss percentage.
    pub hb_loss_pct: f64,
    /// Mean member-report ("Msg") loss percentage.
    pub msg_loss_pct: f64,
    /// Mean worst-case link utilisation percentage.
    pub link_util_pct: f64,
    /// Whether tracking stayed coherent in every averaged run.
    pub all_coherent: bool,
}

/// The regenerated table.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Rows for 33 and 50 km/h.
    pub rows: Vec<Table1Row>,
}

/// Runs the experiment, averaging over `seeds` runs per row (paper: 3).
#[must_use]
pub fn run(seeds: u64) -> Table1 {
    let rows = parallel_map(vec![33.0, 50.0], |&kmh| {
        let mut hb = 0.0;
        let mut msg = 0.0;
        let mut util = 0.0;
        let mut all_coherent = true;
        for seed in 0..seeds {
            let cfg = TrackingRun {
                cols: 14,
                rows: 3,
                lane_y: 1.0,
                // The emulated testbed speeds: 15 s/hop and 10 s/hop.
                speed_hops_per_s: kmh_to_hops_per_s(kmh),
                comm_radius: 1.6,
                base_loss: 0.15,
                heartbeat_ttl: 1,
                seed: 101 + seed,
                ..TrackingRun::default()
            };
            let out = run_tracking(&cfg);
            hb += 100.0 * out.hb_loss;
            msg += 100.0 * out.report_loss;
            util += 100.0 * out.link_utilization;
            all_coherent &= out.coherent();
        }
        let n = seeds as f64;
        Table1Row {
            speed_kmh: kmh,
            hb_loss_pct: hb / n,
            msg_loss_pct: msg / n,
            link_util_pct: util / n,
            all_coherent,
        }
    });
    Table1 { rows }
}

/// Prints the table next to the paper's numbers.
pub fn print(table: &Table1) {
    println!("Table 1 — communication performance (paper values in parentheses)");
    println!(
        "{:>10} {:>18} {:>18} {:>18} {:>10}",
        "speed", "% HB loss", "% Msg loss", "% Link util", "coherent"
    );
    let paper = [(33.0, 7.08, 3.05, 2.54), (50.0, 22.69, 17.05, 2.88)];
    for row in &table.rows {
        let p = paper.iter().find(|(k, ..)| *k == row.speed_kmh);
        let fmt = |v: f64, pv: Option<f64>| match pv {
            Some(pv) => format!("{v:>7.2} ({pv:>5.2})"),
            None => format!("{v:>7.2}"),
        };
        println!(
            "{:>6} km/h {:>18} {:>18} {:>18} {:>10}",
            row.speed_kmh,
            fmt(row.hb_loss_pct, p.map(|x| x.1)),
            fmt(row.msg_loss_pct, p.map(|x| x.2)),
            fmt(row.link_util_pct, p.map(|x| x.3)),
            row.all_coherent
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_matches_the_paper() {
        let t = run(3);
        let row33 = t.rows.iter().find(|r| r.speed_kmh == 33.0).unwrap();
        let row50 = t.rows.iter().find(|r| r.speed_kmh == 50.0).unwrap();
        // (1) The system operates correctly in the presence of loss.
        assert!(
            row33.all_coherent,
            "33 km/h must track despite loss: {row33:?}"
        );
        assert!(
            row33.hb_loss_pct > 0.0 || row33.msg_loss_pct > 0.0,
            "there must be loss"
        );
        // (3) Utilisation is a tiny fraction of capacity (paper: ~2.5-3%).
        assert!(
            row33.link_util_pct < 15.0,
            "util {}% too high",
            row33.link_util_pct
        );
        assert!(row50.link_util_pct < 15.0);
        // (4) Utilisation grows only slightly with speed.
        assert!(
            (row50.link_util_pct - row33.link_util_pct).abs() < 0.5 * row33.link_util_pct + 1.0,
            "util jump too large: {} vs {}",
            row33.link_util_pct,
            row50.link_util_pct
        );
        // Loss does not shrink at speed (the paper saw it grow).
        assert!(
            row50.hb_loss_pct + row50.msg_loss_pct
                >= 0.8 * (row33.hb_loss_pct + row33.msg_loss_pct),
            "loss should not collapse at speed"
        );
    }
}
