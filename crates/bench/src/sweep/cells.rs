//! Sweep cells: one `(scenario, seed)` point each, pure functions of
//! their spec.
//!
//! A cell carries everything its run needs, so any worker can execute it
//! and produce the identical JSON line. Determinism rests on per-cell RNG
//! isolation — every random stream in a run (radio fading, backoff, burst
//! chains, fault plans) forks from the cell's own seed, never from shared
//! or thread-local state — which is what lets the engine hand cells to
//! whichever worker is free without affecting the merged output.

use envirotrack_chaos::cell::{run_cell as run_chaos, ChaosCell};
use envirotrack_core::report::json::JsonObject;
use envirotrack_sim::time::SimDuration;

use crate::experiments::scale::{run_scale, ScaleRun};
use crate::harness::{run_tracking, tracker_program, TrackingRun};

/// What one sweep cell runs.
#[derive(Debug, Clone)]
pub enum CellSpec {
    /// The Figure-2 tracking application: a tank crossing a `cols`×`rows`
    /// grid at `speed_hops_per_s`, all other knobs at the paper defaults.
    Tracking {
        /// Grid columns.
        cols: u32,
        /// Grid rows.
        rows: u32,
        /// Tank speed in grid hops per second.
        speed_hops_per_s: f64,
        /// RNG seed.
        seed: u64,
    },
    /// A chaos storm: the tracking app under a seed-random fault plan.
    Chaos(ChaosCell),
    /// A bounded scale run: `nodes` on a [`ScaleScenario`] square field,
    /// driven for `horizon_ms` of virtual time. The JSON line carries only
    /// virtual-time audits (never wall-clock), so merges stay
    /// byte-identical at any worker count.
    Scale {
        /// Field size in nodes.
        nodes: u32,
        /// Concurrent targets.
        targets: u32,
        /// Virtual horizon in milliseconds.
        horizon_ms: u64,
        /// RNG seed.
        seed: u64,
    },
}

/// One schedulable sweep point: a unique key plus its spec. Cells are
/// merged in ascending `id` order, so ids must be unique within a sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Sort/merge key, unique within the sweep (e.g. `track-c10-s0007`).
    pub id: String,
    /// The run this cell performs.
    pub spec: CellSpec,
}

impl SweepCell {
    /// Executes the cell and encodes its outcome as one JSON line
    /// (no trailing newline). Pure: same spec ⇒ same bytes.
    #[must_use]
    pub fn run(&self) -> String {
        match &self.spec {
            CellSpec::Tracking {
                cols,
                rows,
                speed_hops_per_s,
                seed,
            } => {
                let cfg = TrackingRun {
                    cols: *cols,
                    rows: *rows,
                    speed_hops_per_s: *speed_hops_per_s,
                    seed: *seed,
                    ..TrackingRun::default()
                };
                let out = run_tracking(&cfg);
                JsonObject::new()
                    .field_str("cell", &self.id)
                    .field_str("kind", "tracking")
                    .field_u64("seed", *seed)
                    .field_u64("labels_created", out.labels_created as u64)
                    .field_u64("labels_suppressed", out.labels_suppressed as u64)
                    .field_u64("handovers", out.handovers as u64)
                    .field_f64("tracked_fraction", out.tracked_fraction)
                    .field_f64("mean_error", out.mean_error)
                    .field_u64("hb_tx", out.hb_tx)
                    .field_f64("hb_loss", out.hb_loss)
                    .field_f64("link_utilization", out.link_utilization)
                    .field_u64("elapsed_us", out.elapsed.as_micros())
                    .finish()
            }
            CellSpec::Scale {
                nodes,
                targets,
                horizon_ms,
                seed,
            } => {
                let out = run_scale(&ScaleRun {
                    nodes: *nodes,
                    targets: *targets,
                    horizon: SimDuration::from_millis(*horizon_ms),
                    seed: *seed,
                    ..ScaleRun::default()
                });
                JsonObject::new()
                    .field_str("cell", &self.id)
                    .field_str("kind", "scale")
                    .field_u64("seed", *seed)
                    .field_u64("nodes", u64::from(*nodes))
                    .field_u64("events", out.events)
                    .field_u64("labels_created", out.labels_created)
                    .field_u64("handovers", out.handovers)
                    .field_u64("horizon_ms", *horizon_ms)
                    .finish()
            }
            CellSpec::Chaos(cell) => {
                let record = run_chaos(cell, tracker_program());
                // Splice the cell header onto the flat record object.
                let body = record.to_json();
                let tagged = JsonObject::new()
                    .field_str("cell", &self.id)
                    .field_str("kind", "chaos")
                    .finish();
                format!(
                    "{},{}",
                    &tagged[..tagged.len() - 1],
                    &body[1..]
                )
            }
        }
    }
}

/// The default smoke sweep: `n` cells alternating small tracking runs and
/// small chaos storms, seeded from `base_seed`. Ids encode kind and seed,
/// so they sort deterministically.
#[must_use]
pub fn default_cells(n: usize, base_seed: u64) -> Vec<SweepCell> {
    (0..n)
        .map(|i| {
            let seed = base_seed.wrapping_add(i as u64);
            if i % 2 == 0 {
                SweepCell {
                    id: format!("track-s{seed:06}"),
                    spec: CellSpec::Tracking {
                        cols: 10,
                        rows: 2,
                        speed_hops_per_s: 0.2,
                        seed,
                    },
                }
            } else {
                SweepCell {
                    id: format!("chaos-s{seed:06}"),
                    spec: CellSpec::Chaos(ChaosCell {
                        cols: 6,
                        rows: 2,
                        horizon: SimDuration::from_secs(20),
                        seed,
                    }),
                }
            }
        })
        .collect()
}

/// A homogeneous scale sweep: `n` cells of `nodes` nodes each, seeded from
/// `base_seed`, with a short bounded horizon. Used by the `scale` bin's
/// worker-scaling section.
#[must_use]
pub fn scale_cells(n: usize, nodes: u32, base_seed: u64) -> Vec<SweepCell> {
    (0..n)
        .map(|i| {
            let seed = base_seed.wrapping_add(i as u64);
            SweepCell {
                id: format!("scale-n{nodes:06}-s{seed:06}"),
                spec: CellSpec::Scale {
                    nodes,
                    targets: 2,
                    horizon_ms: 2_000,
                    seed,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_pure_functions_of_their_spec() {
        for cell in default_cells(2, 9) {
            assert_eq!(cell.run(), cell.run(), "cell {} not pure", cell.id);
        }
    }

    #[test]
    fn chaos_lines_are_single_flat_json_objects() {
        let cell = &default_cells(2, 9)[1];
        let line = cell.run();
        assert!(line.starts_with("{\"cell\":\"chaos-s"));
        assert!(line.ends_with('}'));
        assert!(!line.contains('\n'));
        assert!(line.contains("\"violations\":"));
    }

    #[test]
    fn scale_cells_are_pure_and_wall_clock_free() {
        for cell in scale_cells(2, 120, 5) {
            let line = cell.run();
            assert_eq!(line, cell.run(), "cell {} not pure", cell.id);
            assert!(line.contains("\"kind\":\"scale\""));
            assert!(line.contains("\"events\":"));
            assert!(!line.contains("wall"), "scale lines must stay wall-clock free");
        }
    }

    #[test]
    fn default_cell_ids_are_unique_and_sorted_stable() {
        let cells = default_cells(8, 100);
        let mut ids: Vec<&str> = cells.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cells.len());
    }
}
