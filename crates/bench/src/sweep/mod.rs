//! Parameter sweeps: parallel execution, the scenario sweep engine, and
//! max-trackable-speed search.
//!
//! [`parallel_map`] is the light primitive the figure experiments use;
//! [`engine`] is the full sweep engine — a work-stealing pool of
//! `(scenario, seed)` [`cells`] whose merged JSON-lines output is
//! byte-identical at any worker count (see DESIGN.md §10).

pub mod cells;
pub mod engine;

pub use cells::{CellSpec, SweepCell};
pub use engine::{run_sweep, SweepReport};

use crate::harness::{run_tracking, TrackingRun};

/// Runs `f` over `inputs` in parallel (a worker pool bounded by available
/// parallelism, fed by an atomic cursor), preserving input order in the
/// output. Pure `std`: scoped threads + an mpsc channel for results.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map_or(4, |w| w.get())
        .min(n);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, O)>();
    let inputs_ref = &inputs;
    let f_ref = &f;
    let next_ref = &next;
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            s.spawn(move || loop {
                let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f_ref(&inputs_ref[i]);
                tx.send((i, out)).expect("result channel open");
            });
        }
    });
    drop(tx);
    let mut indexed: Vec<(usize, O)> = rx.into_iter().collect();
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, o)| o).collect()
}

/// How a coherence check at one speed is produced from a run template.
pub type SpeedProbe<'a> = dyn Fn(f64) -> bool + Sync + 'a;

/// Finds the maximum trackable speed (in hops/s) for a run template by
/// exponential bracketing followed by bisection.
///
/// `coherent_at(speed)` must be monotone-ish (true at low speeds); protocol
/// noise can make it ragged, so a speed is accepted only if a majority of
/// `votes` seeds agree.
#[must_use]
pub fn max_trackable_speed(template: &TrackingRun, votes: u32, resolution: f64) -> f64 {
    let coherent_at = |speed: f64| -> bool {
        let mut ok = 0;
        for v in 0..votes {
            let cfg = TrackingRun {
                speed_hops_per_s: speed,
                seed: template
                    .seed
                    .wrapping_mul(31)
                    .wrapping_add(u64::from(v) + 1),
                ..template.clone()
            };
            if run_tracking(&cfg).coherent() {
                ok += 1;
            }
        }
        2 * ok > votes
    };

    let mut lo = 0.05;
    if !coherent_at(lo) {
        return 0.0;
    }
    // Exponential bracket.
    let mut hi = lo * 2.0;
    while coherent_at(hi) {
        lo = hi;
        hi *= 2.0;
        if hi > 16.0 {
            return hi / 2.0;
        }
    }
    // Bisect.
    while hi - lo > resolution {
        let mid = (lo + hi) / 2.0;
        if coherent_at(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..50).collect(), |x: &i32| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_input() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn max_speed_search_finds_a_positive_speed_for_sane_configs() {
        let template = TrackingRun {
            cols: 14,
            rows: 3,
            lane_y: 1.0,
            ..TrackingRun::default()
        };
        let v = max_trackable_speed(&template, 1, 0.5);
        assert!(v > 0.0, "the default config must track something");
    }
}
