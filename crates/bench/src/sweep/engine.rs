//! The sweep engine: a work-stealing pool of cells with a deterministic
//! ordered reduction.
//!
//! Cells are dealt round-robin into per-worker queues; a worker drains its
//! own queue from the front and, once empty, steals from the back of the
//! longest remaining queue. Each worker streams its finished JSON lines
//! into a private shard — no cross-worker ordering exists anywhere in the
//! run phase. The reducer then merges shards by *cell id*, never arrival
//! order, which together with per-cell RNG isolation (see
//! [`super::cells`]) makes the merged output byte-identical at any worker
//! count.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use super::cells::SweepCell;

/// The merged result of one sweep plus its execution profile.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// All cell lines, sorted by cell id, one per line, trailing newline.
    pub merged_jsonl: String,
    /// Cells executed.
    pub cells_run: usize,
    /// Cells each worker ended up executing (length = worker count).
    pub per_worker_cells: Vec<usize>,
    /// Cross-queue steals performed.
    pub steals: u64,
    /// Wall-clock spent running cells (the parallel phase).
    pub run_wall: Duration,
    /// Wall-clock spent merging shards (the reduction phase).
    pub merge_wall: Duration,
}

impl SweepReport {
    /// Completed runs per wall-clock second over the parallel phase.
    #[must_use]
    pub fn runs_per_sec(&self) -> f64 {
        let s = self.run_wall.as_secs_f64();
        if s <= 0.0 {
            0.0
        } else {
            self.cells_run as f64 / s
        }
    }
}

/// One worker's queue: cells it owns, stealable from the back.
struct WorkerQueue {
    cells: Mutex<VecDeque<usize>>,
}

/// Runs every cell across `workers` threads and reduces the shards.
///
/// # Panics
///
/// Panics when `workers == 0` or when two cells share an id (the merge
/// key must identify a cell uniquely).
#[must_use]
pub fn run_sweep(cells: &[SweepCell], workers: usize) -> SweepReport {
    assert!(workers > 0, "a sweep needs at least one worker");
    {
        let mut ids: Vec<&str> = cells.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        assert!(
            ids.windows(2).all(|w| w[0] != w[1]),
            "cell ids must be unique"
        );
    }

    // Deal the cells round-robin so every queue starts balanced.
    let queues: Vec<WorkerQueue> = (0..workers)
        .map(|w| WorkerQueue {
            cells: Mutex::new(
                (w..cells.len())
                    .step_by(workers)
                    .collect::<VecDeque<usize>>(),
            ),
        })
        .collect();
    let steals = AtomicU64::new(0);

    let run_start = Instant::now();
    let mut shards: Vec<Vec<(usize, String)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queues = &queues;
                let steals = &steals;
                s.spawn(move || {
                    let mut shard: Vec<(usize, String)> = Vec::new();
                    loop {
                        // Own work first, front-to-back.
                        let mine = queues[w].cells.lock().expect("queue lock").pop_front();
                        let idx = match mine {
                            Some(i) => i,
                            None => {
                                // Steal from the back of the fullest queue.
                                let victim = match steal_target(queues, w) {
                                    Some(v) => v,
                                    None => break,
                                };
                                match queues[victim]
                                    .cells
                                    .lock()
                                    .expect("queue lock")
                                    .pop_back()
                                {
                                    Some(i) => {
                                        steals.fetch_add(1, Ordering::Relaxed);
                                        i
                                    }
                                    // Raced with the victim; rescan.
                                    None => continue,
                                }
                            }
                        };
                        shard.push((idx, cells[idx].run()));
                    }
                    shard
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    let run_wall = run_start.elapsed();

    let merge_start = Instant::now();
    let per_worker_cells: Vec<usize> = shards.iter().map(Vec::len).collect();
    let mut lines: Vec<(usize, String)> = shards.drain(..).flatten().collect();
    // Reduce in cell-id order — never arrival order — so the merged bytes
    // are independent of scheduling.
    lines.sort_by(|(a, _), (b, _)| cells[*a].id.cmp(&cells[*b].id));
    let mut merged_jsonl = String::new();
    for (_, line) in &lines {
        merged_jsonl.push_str(line);
        merged_jsonl.push('\n');
    }
    let merge_wall = merge_start.elapsed();

    SweepReport {
        merged_jsonl,
        cells_run: lines.len(),
        per_worker_cells,
        steals: steals.load(Ordering::Relaxed),
        run_wall,
        merge_wall,
    }
}

/// The index of the non-empty queue (other than `me`) with the most work
/// left, or `None` when everything is drained.
fn steal_target(queues: &[WorkerQueue], me: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for (i, q) in queues.iter().enumerate() {
        if i == me {
            continue;
        }
        let len = q.cells.lock().expect("queue lock").len();
        if len > 0 && best.is_none_or(|(_, b)| len > b) {
            best = Some((i, len));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::super::cells::default_cells;
    use super::*;

    #[test]
    fn every_cell_runs_exactly_once_at_any_worker_count() {
        let cells = default_cells(6, 40);
        for workers in [1, 3, 8] {
            let report = run_sweep(&cells, workers);
            assert_eq!(report.cells_run, cells.len());
            assert_eq!(report.per_worker_cells.len(), workers);
            assert_eq!(
                report.per_worker_cells.iter().sum::<usize>(),
                cells.len()
            );
            assert_eq!(report.merged_jsonl.lines().count(), cells.len());
        }
    }

    #[test]
    fn merged_output_is_sorted_by_cell_id() {
        let cells = default_cells(6, 40);
        let report = run_sweep(&cells, 4);
        let keys: Vec<&str> = report
            .merged_jsonl
            .lines()
            .map(|l| l.split('"').nth(3).expect("cell id field"))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    #[should_panic(expected = "cell ids must be unique")]
    fn duplicate_cell_ids_are_rejected() {
        let mut cells = default_cells(2, 40);
        cells[1].id = cells[0].id.clone();
        let _ = run_sweep(&cells, 2);
    }

    #[test]
    fn more_workers_than_cells_is_fine() {
        let cells = default_cells(2, 77);
        let report = run_sweep(&cells, 8);
        assert_eq!(report.cells_run, 2);
    }
}
