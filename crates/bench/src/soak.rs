//! Long-horizon chaos soak: the whole stack under layered faults.
//!
//! One soak run drives a multi-target field — a moving tank tracked by
//! one context type, plus a stationary watcher/beacon service pair that
//! exercises the replicated directory and MTP end to end — through a
//! scripted storm of link-level corruption, Gilbert–Elliott burst loss,
//! partition/heal cycles, and node crash/reboots, with the invariant
//! monitor sampling throughout. The claims a green soak certifies:
//!
//! - **zero invariant violations** (leader uniqueness, aggregate quorum,
//!   partition isolation, clock monotonicity, corruption rejection);
//! - **zero corrupted frames accepted** — every garbled frame fails CRC
//!   verification and is dropped (the shadow-hash audit stays at zero);
//! - **post-heal convergence** — after the last partition heals, every
//!   directory replica set agrees on its live registrations;
//! - **deterministic replay** — the identical config yields a
//!   byte-identical [`SoakReport`] JSON, so any red run reproduces from
//!   the seed alone.
//!
//! The fault schedule is a pure function of the config (fractions of the
//! horizon, nodes picked by grid position): no RNG draw is spent building
//! it, so the plan prints exactly as it runs.

use std::sync::Arc;

use envirotrack_chaos::harness;
use envirotrack_chaos::monitor::MonitorConfig;
use envirotrack_chaos::plan::{FaultEvent, FaultPlan};
use envirotrack_core::api::Program;
use envirotrack_core::context::{ContextTypeId, SensePredicate};
use envirotrack_core::network::{NetworkConfig, SensorNetwork};
use envirotrack_core::report::json::JsonObject;
use envirotrack_core::report::RunRecord;
use envirotrack_core::transport::Port;
use envirotrack_net::medium::{GilbertElliott, LinkFaults};
use envirotrack_sim::time::{SimDuration, Timestamp};
use envirotrack_world::field::Deployment;
use envirotrack_world::geometry::Point;
use envirotrack_world::sensing::Environment;
use envirotrack_world::target::{Channel, Emission, Falloff, Target, TargetId, Trajectory};

const PING: Port = Port(10);
const PONG: Port = Port(11);
const TRACKER: ContextTypeId = ContextTypeId(0);
const WATCHER: ContextTypeId = ContextTypeId(1);
const BEACON: ContextTypeId = ContextTypeId(2);

/// One soak run specification. Everything downstream — world, fault
/// schedule, oracles — derives deterministically from these fields.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakConfig {
    /// Grid columns.
    pub cols: u32,
    /// Grid rows.
    pub rows: u32,
    /// Virtual time to simulate.
    pub horizon: SimDuration,
    /// Simulation seed (radio fading, backoff, jitter — the fault plan
    /// itself is seed-free).
    pub seed: u64,
    /// Directory replication factor (≥ 2 so anti-entropy has peers).
    pub replicas: usize,
    /// Anti-entropy gossip period.
    pub gossip_period: SimDuration,
    /// The link-fault profile active for the bulk of the run.
    pub link_faults: LinkFaults,
    /// Partition/heal cycles (the partition splits the grid into left and
    /// right halves).
    pub partition_cycles: u32,
    /// Crash/reboot pairs on nodes spread across the grid.
    pub crash_reboots: u32,
}

impl SoakConfig {
    /// The flagship profile: 10 minutes of compressed time on a 12×5
    /// grid, per-byte corruption at 10⁻³, one burst-loss interval, two
    /// partition/heal cycles, three crash/reboots.
    #[must_use]
    pub fn flagship(seed: u64) -> Self {
        SoakConfig {
            cols: 12,
            rows: 5,
            horizon: SimDuration::from_secs(600),
            seed,
            replicas: 2,
            gossip_period: SimDuration::from_secs(5),
            link_faults: LinkFaults::default(),
            partition_cycles: 2,
            crash_reboots: 3,
        }
    }

    /// A CI-sized profile: same fault layering, 60 s horizon, one
    /// partition cycle, one crash/reboot.
    #[must_use]
    pub fn smoke(seed: u64) -> Self {
        SoakConfig {
            cols: 9,
            rows: 3,
            horizon: SimDuration::from_secs(60),
            seed,
            replicas: 2,
            gossip_period: SimDuration::from_secs(5),
            link_faults: LinkFaults::default(),
            partition_cycles: 1,
            crash_reboots: 1,
        }
    }

    fn frac(&self, percent: u64) -> Timestamp {
        Timestamp::from_micros(self.horizon.as_micros() * percent / 100)
    }
}

/// What a finished soak certifies, all fields derived from simulation
/// state only (no wall-clock anywhere), so the JSON is byte-identical
/// across replays of the same config.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// The seed the run (and any replay) uses.
    pub seed: u64,
    /// Simulated horizon in seconds.
    pub horizon_s: f64,
    /// Invariant violations observed by the chaos monitor. Must be 0.
    pub violations: u64,
    /// Corrupted frames accepted past CRC (shadow-hash audit). Must be 0.
    pub corrupt_accepted: u64,
    /// Corrupted frames caught and dropped by CRC verification, summed
    /// over every frame kind.
    pub corrupt_dropped: u64,
    /// Anti-entropy pushes and replies sent.
    pub gossip_tx: u64,
    /// Directory entries repaired by anti-entropy merges.
    pub gossip_repairs: u64,
    /// Whether every replica set agreed on its live registrations at the
    /// end of the run. Must be true.
    pub replicas_agree: bool,
    /// End-to-end service probes answered (watcher→beacon→watcher round
    /// trips through directory + MTP).
    pub pongs: u64,
    /// Fault events applied, as scheduled by the plan.
    pub fault_events: u64,
    /// Telemetry counters registered — bounded by the protocol's keyspace,
    /// not by run length.
    pub telemetry_counters: u64,
    /// Trace events retained — bounded by the trace ring, not run length.
    pub telemetry_trace_len: u64,
    /// The standard whole-run record (loss causes, protocol totals).
    pub record: RunRecord,
}

impl SoakReport {
    /// Whether the run met every soak acceptance claim.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations == 0 && self.corrupt_accepted == 0 && self.replicas_agree
    }

    /// One flat JSON object (with trailing newline), deterministic across
    /// replays of the same config.
    #[must_use]
    pub fn to_json(&self) -> String {
        let head = JsonObject::new()
            .field_str("bench", "soak")
            .field_u64("seed", self.seed)
            .field_f64("sim_horizon_s", self.horizon_s)
            .field_bool("passed", self.passed())
            .field_u64("violations", self.violations)
            .field_u64("corrupt_accepted", self.corrupt_accepted)
            .field_u64("corrupt_dropped", self.corrupt_dropped)
            .field_u64("gossip_tx", self.gossip_tx)
            .field_u64("gossip_repairs", self.gossip_repairs)
            .field_bool("replicas_agree", self.replicas_agree)
            .field_u64("pongs", self.pongs)
            .field_u64("fault_events", self.fault_events)
            .field_u64("telemetry_counters", self.telemetry_counters)
            .field_u64("telemetry_trace_len", self.telemetry_trace_len)
            .finish();
        format!(
            "{},\"record\":{}}}\n",
            &head[..head.len() - 1],
            self.record.to_json()
        )
    }
}

/// The soak world: a tank crossing the middle lane (tracked by type 0),
/// a stationary watcher (type 1, lit corner) probing a stationary beacon
/// (type 2, opposite corner) through the replicated directory and MTP.
fn build_world(cfg: &SoakConfig) -> (Arc<Program>, Deployment, Environment, NetworkConfig) {
    let program = Arc::new(
        Program::builder()
            .context("tracker", |c| {
                c.activation(SensePredicate::threshold(Channel::Magnetic, 0.5))
            })
            .context("watcher", |c| {
                c.activation(SensePredicate::threshold(Channel::Light, 0.5))
                    .subscribe("beacon")
                    .object("prober", |o| {
                        o.on_timer("probe", SimDuration::from_secs(6), |ctx| {
                            for (label, _) in ctx.labels_of_type(BEACON) {
                                ctx.send(label, PING, &b"ping"[..]);
                            }
                        })
                        .on_message("answer", PONG, |ctx| {
                            ctx.log("pong received".to_owned());
                        })
                    })
            })
            .context("beacon", |c| {
                c.activation(SensePredicate::threshold(Channel::Acoustic, 0.5))
                    .object("responder", |o| {
                        o.on_message("ping", PING, |ctx| {
                            let from = ctx.incoming().expect("message-triggered").src_label;
                            ctx.send(from, PONG, &b"pong"[..]);
                        })
                    })
            })
            .build()
            .expect("valid soak program"),
    );

    let deployment = Deployment::grid(cfg.cols, cfg.rows, 1.0);
    let right = f64::from(cfg.cols - 1);
    let lane = f64::from(cfg.rows / 2);
    let mut environment = Environment::new();
    // The tank crosses the lane once over ~80 % of the horizon.
    let speed = right / (cfg.horizon.as_secs_f64() * 0.8);
    environment.add_target(Target::new(
        TargetId(0),
        Trajectory::line(Point::new(0.0, lane), Point::new(right, lane), speed),
        vec![Emission {
            channel: Channel::Magnetic,
            strength: 1.0,
            falloff: Falloff::Disk { radius: 1.2 },
        }],
    ));
    environment.add_target(Target::new(
        TargetId(1),
        Trajectory::stationary(Point::new(1.0, 0.0)),
        vec![Emission {
            channel: Channel::Light,
            strength: 1.0,
            falloff: Falloff::Disk { radius: 1.2 },
        }],
    ));
    environment.add_target(Target::new(
        TargetId(2),
        Trajectory::stationary(Point::new(right - 1.0, f64::from(cfg.rows - 1))),
        vec![Emission {
            channel: Channel::Acoustic,
            strength: 1.0,
            falloff: Falloff::Disk { radius: 1.2 },
        }],
    ));

    let mut config = NetworkConfig::default();
    config.middleware = config
        .middleware
        .with_directory(true)
        .with_directory_replicas(cfg.replicas)
        .with_directory_gossip(cfg.replicas > 1)
        .with_directory_gossip_period(cfg.gossip_period);
    config.middleware.directory_update_period = SimDuration::from_secs(4);
    (program, deployment, environment, config)
}

/// The scripted fault storm, as percentages of the horizon:
///
/// - link faults on from 2 % to 90 % (the last tenth is clean so the
///   convergence oracle is not judging frames still in flight);
/// - burst loss layered on top from 15 % to 30 %;
/// - crash/reboot pairs starting at 10 %, one every 18 %, each node down
///   for 8 % of the run, picked at evenly spaced grid indices;
/// - partition/heal cycles from 35 % on, one every 22 %, each split
///   lasting 12 %, dividing the grid into left and right halves.
fn build_plan(cfg: &SoakConfig, deployment: &Deployment) -> FaultPlan {
    let n = deployment.len();
    let mut plan = FaultPlan::new()
        .at(cfg.frac(2), FaultEvent::LinkFaultsOn(cfg.link_faults))
        .at(cfg.frac(15), FaultEvent::BurstLossOn(GilbertElliott::default()))
        .at(cfg.frac(30), FaultEvent::BurstLossOff)
        .at(cfg.frac(90), FaultEvent::LinkFaultsOff);
    for i in 0..cfg.crash_reboots {
        // Interior nodes spread across the field; never the base station.
        let idx = ((i as usize + 1) * n / (cfg.crash_reboots as usize + 1)).max(1);
        let node = deployment
            .ids()
            .nth(idx.min(n - 1))
            .expect("index within deployment");
        let down = cfg.frac(10 + 18 * u64::from(i));
        let up = down + cfg.horizon.mul_f64(0.08);
        plan = plan
            .at(down, FaultEvent::Crash(node))
            .at(up, FaultEvent::Reboot(node));
    }
    let mid = f64::from(cfg.cols - 1) / 2.0;
    let groups: Vec<u8> = deployment
        .ids()
        .map(|id| u8::from(deployment.position(id).x > mid))
        .collect();
    for i in 0..cfg.partition_cycles {
        let start = cfg.frac(35 + 22 * u64::from(i));
        let end = start + cfg.horizon.mul_f64(0.12);
        plan = plan
            .at(start, FaultEvent::Partition(groups.clone()))
            .at(end, FaultEvent::Heal);
    }
    plan
}

/// Executes one soak run to completion and scores it against the
/// acceptance oracles. Pure in the config: the same `cfg` always returns
/// the identical report.
#[must_use]
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    let (program, deployment, environment, net) = build_world(cfg);
    let mut engine =
        SensorNetwork::build_engine(program, deployment, environment, net, cfg.seed);
    let plan = build_plan(cfg, engine.world().deployment());
    let fault_events = plan.len() as u64;
    let monitor = harness::install(&mut engine, plan, cfg.seed, MonitorConfig::default());
    let end = Timestamp::ZERO + cfg.horizon;
    engine.run_until(end);

    let world = engine.world();
    let telemetry = world.telemetry();
    let corrupt_dropped = telemetry.with_registry(|r| {
        r.counters()
            .filter(|(name, _)| name.starts_with("net.k") && name.ends_with(".corrupt"))
            .map(|(_, v)| v)
            .sum()
    });
    let telemetry_counters = telemetry.with_registry(|r| r.counters().count() as u64);
    let replicas_agree = [TRACKER, WATCHER, BEACON]
        .iter()
        .all(|&tid| world.directory_replicas_agree(tid, end));
    let pongs = world
        .app_log()
        .iter()
        .filter(|(_, _, l)| l.contains("pong received"))
        .count() as u64;
    let mon = monitor.borrow();
    let record = harness::summarize(world, cfg.seed, end, &mon);
    SoakReport {
        seed: cfg.seed,
        horizon_s: cfg.horizon.as_secs_f64(),
        violations: mon.violations().len() as u64,
        corrupt_accepted: telemetry.counter("net.corrupt_accepted"),
        corrupt_dropped,
        gossip_tx: telemetry.counter("dir.gossip.tx"),
        gossip_repairs: telemetry.counter("dir.gossip.repair"),
        replicas_agree,
        pongs,
        fault_events,
        telemetry_counters,
        telemetry_trace_len: telemetry.trace_len() as u64,
        record,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_soak_passes_and_replays_byte_identically() {
        let cfg = SoakConfig::smoke(11);
        let a = run_soak(&cfg);
        assert_eq!(a.violations, 0, "invariants: {:?}", a);
        assert_eq!(a.corrupt_accepted, 0, "corrupt frame accepted");
        assert!(a.replicas_agree, "replicas diverged at end of run");
        assert!(
            a.corrupt_dropped > 0,
            "link faults must actually corrupt frames for the run to mean anything"
        );
        let b = run_soak(&cfg);
        assert_eq!(a.to_json(), b.to_json(), "soak replay diverged");
    }
}
