//! End-to-end benchmarks: one full simulated crossing per experiment
//! family, sized so `cargo bench` completes in minutes. These measure
//! simulator throughput (virtual seconds per wall second) for the exact
//! configurations behind each paper figure.
//!
//! Plain `harness = false` binary over the in-tree timing loop
//! ([`envirotrack_bench::harness::measure_with`]); run with `cargo bench`.

use std::hint::black_box;
use std::time::Duration;

use envirotrack_bench::harness::{measure_with, run_tracking, TrackingRun};
use envirotrack_sim::time::SimDuration;

/// Whole-crossing runs take milliseconds to seconds each, so the budgets
/// are wider than the micro-bench defaults: one warmup run, then at least
/// three timed batches within ~2 s.
fn measure_run(name: &str, cfg: &TrackingRun, probe: impl Fn(&TrackingRun) -> bool) -> String {
    measure_with(
        name,
        Duration::from_millis(1),
        Duration::from_secs(2),
        || black_box(probe(cfg)),
    )
    .report()
}

fn main() {
    let fig3 = TrackingRun::default();
    let fig4 = TrackingRun {
        cols: 14,
        rows: 3,
        lane_y: 1.0,
        comm_radius: 1.6,
        base_loss: 0.15,
        ..TrackingRun::default()
    };
    let fig5 = TrackingRun {
        cols: 24,
        rows: 5,
        lane_y: 2.0,
        speed_hops_per_s: 1.0,
        heartbeat_period: SimDuration::from_millis(250),
        relinquish: false,
        sense_period: Some(SimDuration::from_millis(250)),
        ..TrackingRun::default()
    };

    println!("tracking end-to-end benchmarks");
    println!("------------------------------");
    println!(
        "{}",
        measure_run("tracking/fig3_testbed_crossing", &fig3, |c| {
            run_tracking(c).handovers > 0
        })
    );
    println!(
        "{}",
        measure_run("tracking/fig4_short_radio_crossing", &fig4, |c| {
            run_tracking(c).handover_success_ratio() >= 0.0
        })
    );
    println!(
        "{}",
        measure_run("tracking/fig5_takeover_point", &fig5, |c| run_tracking(c)
            .coherent())
    );
}
