//! Criterion end-to-end benchmarks: one full simulated crossing per
//! experiment family, sized so `cargo bench` completes in minutes. These
//! measure simulator throughput (virtual seconds per wall second) for the
//! exact configurations behind each paper figure.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use envirotrack_bench::harness::{run_tracking, TrackingRun};
use envirotrack_sim::time::SimDuration;

fn bench_fig3_crossing(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracking");
    g.sample_size(10);
    let cfg = TrackingRun::default();
    g.bench_function("fig3_testbed_crossing", |b| {
        b.iter(|| black_box(run_tracking(&cfg)).handovers)
    });
    g.finish();
}

fn bench_fig4_handover_config(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracking");
    g.sample_size(10);
    let cfg = TrackingRun {
        cols: 14,
        rows: 3,
        lane_y: 1.0,
        comm_radius: 1.6,
        base_loss: 0.15,
        ..TrackingRun::default()
    };
    g.bench_function("fig4_short_radio_crossing", |b| {
        b.iter(|| black_box(run_tracking(&cfg)).handover_success_ratio())
    });
    g.finish();
}

fn bench_fig5_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracking");
    g.sample_size(10);
    let cfg = TrackingRun {
        cols: 24,
        rows: 5,
        lane_y: 2.0,
        speed_hops_per_s: 1.0,
        heartbeat_period: SimDuration::from_millis(250),
        relinquish: false,
        sense_period: Some(SimDuration::from_millis(250)),
        ..TrackingRun::default()
    };
    g.bench_function("fig5_takeover_point", |b| {
        b.iter(|| black_box(run_tracking(&cfg)).coherent())
    });
    g.finish();
}

criterion_group!(benches, bench_fig3_crossing, bench_fig4_handover_config, bench_fig5_point);
criterion_main!(benches);
