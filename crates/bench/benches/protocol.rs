//! Criterion micro-benchmarks for the protocol-level data structures: the
//! operations every node performs per message or per timer tick. These
//! bound the simulator's throughput and sanity-check that the hot paths
//! stay allocation-light.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use envirotrack_core::aggregate::{AggregateFn, ReadingValue, ReadingWindow};
use envirotrack_core::context::{ContextLabel, ContextTypeId};
use envirotrack_core::transport::{LeaderLoc, LruTable};
use envirotrack_core::wire::{Heartbeat, Message, Report};
use envirotrack_net::routing::GeoRouter;
use envirotrack_sim::queue::EventQueue;
use envirotrack_sim::time::{SimDuration, Timestamp};
use envirotrack_world::field::{Deployment, NodeId};
use envirotrack_world::geometry::Point;

fn label() -> ContextLabel {
    ContextLabel { type_id: ContextTypeId(0), creator: NodeId(7), seq: 3 }
}

fn heartbeat() -> Message {
    Message::Heartbeat(Heartbeat {
        label: label(),
        leader: NodeId(7),
        leader_pos: Point::new(3.5, 0.5),
        weight: 41,
        hb_seq: 1000,
        ttl: 1,
        state: None,
    })
}

fn report() -> Message {
    Message::Report(Report {
        label: label(),
        member: NodeId(9),
        taken_at: Timestamp::from_secs(12),
        values: vec![
            (0, ReadingValue::Position(Point::new(3.0, 0.5))),
            (1, ReadingValue::Scalar(199.5)),
        ],
    })
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    let hb = heartbeat();
    let rp = report();
    g.bench_function("encode_heartbeat", |b| b.iter(|| black_box(&hb).encode()));
    g.bench_function("encode_report", |b| b.iter(|| black_box(&rp).encode()));
    let hb_bytes = hb.encode();
    let rp_bytes = rp.encode();
    g.bench_function("decode_heartbeat", |b| {
        b.iter(|| Message::decode(black_box(&hb_bytes)).unwrap())
    });
    g.bench_function("decode_report", |b| {
        b.iter(|| Message::decode(black_box(&rp_bytes)).unwrap())
    });
    g.finish();
}

fn bench_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregate_window");
    g.bench_function("insert_evaluate_8_members", |b| {
        b.iter(|| {
            let mut w = ReadingWindow::new();
            for i in 0..8u32 {
                w.insert(
                    NodeId(i),
                    Timestamp::from_millis(900 + u64::from(i)),
                    ReadingValue::Position(Point::new(f64::from(i), 0.5)),
                );
            }
            w.evaluate(
                &AggregateFn::CenterOfGravity,
                Timestamp::from_secs(1),
                SimDuration::from_secs(1),
                2,
            )
        })
    });
    g.finish();
}

fn bench_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("mtp_lru");
    g.bench_function("insert_get_cycle", |b| {
        let mut lru: LruTable<ContextLabel, LeaderLoc> = LruTable::new(8);
        let labels: Vec<ContextLabel> = (0..16u32)
            .map(|i| ContextLabel { type_id: ContextTypeId(0), creator: NodeId(i), seq: 0 })
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            let l = labels[i % labels.len()];
            lru.insert(l, LeaderLoc { node: l.creator, pos: Point::ORIGIN });
            let got = lru.get(labels[(i / 2) % labels.len()]);
            i += 1;
            black_box(got.copied())
        })
    });
    g.finish();
}

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(Timestamp::from_micros((i * 7919) % 5000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("geo_routing");
    let field = Deployment::grid(20, 20, 1.0);
    let router = GeoRouter::new(&field, 1.5);
    g.bench_function("route_corner_to_corner_20x20", |b| {
        b.iter(|| router.route(black_box(NodeId(0)), Point::new(19.0, 19.0)).unwrap())
    });
    g.bench_function("next_hop", |b| {
        b.iter(|| router.next_hop(black_box(NodeId(0)), Point::new(19.0, 19.0)))
    });
    g.finish();
}

fn bench_payload_sizes(c: &mut Criterion) {
    // Not a speed benchmark: documents frame costs stay stable.
    let mut g = c.benchmark_group("frame_airtime");
    let cfg = envirotrack_net::medium::RadioConfig::default();
    let frame = envirotrack_net::packet::Frame::broadcast(
        NodeId(0),
        heartbeat().kind(),
        heartbeat().encode(),
    );
    g.bench_function("tx_time_heartbeat", |b| b.iter(|| cfg.tx_time(black_box(&frame))));
    g.finish();
}

criterion_group!(
    benches,
    bench_wire,
    bench_window,
    bench_lru,
    bench_queue,
    bench_routing,
    bench_payload_sizes
);
criterion_main!(benches);
