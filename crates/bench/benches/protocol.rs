//! Micro-benchmarks for the protocol-level data structures: the operations
//! every node performs per message or per timer tick. These bound the
//! simulator's throughput and sanity-check that the hot paths stay
//! allocation-light.
//!
//! Plain `harness = false` binary over the in-tree timing loop
//! ([`envirotrack_bench::harness::measure`]); run with `cargo bench`.

use std::hint::black_box;

use envirotrack_bench::harness::measure;
use envirotrack_core::aggregate::{AggregateFn, ReadingValue, ReadingWindow};
use envirotrack_core::context::{ContextLabel, ContextTypeId};
use envirotrack_core::transport::{LeaderLoc, LruTable};
use envirotrack_core::wire::{Heartbeat, Message, Report};
use envirotrack_net::routing::GeoRouter;
use envirotrack_sim::queue::EventQueue;
use envirotrack_sim::time::{SimDuration, Timestamp};
use envirotrack_world::field::{Deployment, NodeId};
use envirotrack_world::geometry::Point;

fn label() -> ContextLabel {
    ContextLabel {
        type_id: ContextTypeId(0),
        creator: NodeId(7),
        seq: 3,
    }
}

fn heartbeat() -> Message {
    Message::Heartbeat(Heartbeat {
        label: label(),
        leader: NodeId(7),
        leader_pos: Point::new(3.5, 0.5),
        weight: 41,
        hb_seq: 1000,
        ttl: 1,
        state: None,
    })
}

fn report() -> Message {
    Message::Report(Report {
        label: label(),
        member: NodeId(9),
        taken_at: Timestamp::from_secs(12),
        values: vec![
            (0, ReadingValue::Position(Point::new(3.0, 0.5))),
            (1, ReadingValue::Scalar(199.5)),
        ],
    })
}

fn bench_wire(out: &mut Vec<String>) {
    let hb = heartbeat();
    let rp = report();
    out.push(measure("wire/encode_heartbeat", || black_box(&hb).encode()).report());
    out.push(measure("wire/encode_report", || black_box(&rp).encode()).report());
    let hb_bytes = hb.encode();
    let rp_bytes = rp.encode();
    out.push(
        measure("wire/decode_heartbeat", || {
            Message::decode(black_box(&hb_bytes)).unwrap()
        })
        .report(),
    );
    out.push(
        measure("wire/decode_report", || {
            Message::decode(black_box(&rp_bytes)).unwrap()
        })
        .report(),
    );
}

fn bench_window(out: &mut Vec<String>) {
    out.push(
        measure("aggregate_window/insert_evaluate_8_members", || {
            let mut w = ReadingWindow::new();
            for i in 0..8u32 {
                w.insert(
                    NodeId(i),
                    Timestamp::from_millis(900 + u64::from(i)),
                    ReadingValue::Position(Point::new(f64::from(i), 0.5)),
                );
            }
            w.evaluate(
                &AggregateFn::CenterOfGravity,
                Timestamp::from_secs(1),
                SimDuration::from_secs(1),
                2,
            )
        })
        .report(),
    );
}

fn bench_lru(out: &mut Vec<String>) {
    let mut lru: LruTable<ContextLabel, LeaderLoc> = LruTable::new(8);
    let labels: Vec<ContextLabel> = (0..16u32)
        .map(|i| ContextLabel {
            type_id: ContextTypeId(0),
            creator: NodeId(i),
            seq: 0,
        })
        .collect();
    let mut i = 0usize;
    out.push(
        measure("mtp_lru/insert_get_cycle", || {
            let l = labels[i % labels.len()];
            lru.insert(
                l,
                LeaderLoc {
                    node: l.creator,
                    pos: Point::ORIGIN,
                },
            );
            let got = lru.get(labels[(i / 2) % labels.len()]);
            i += 1;
            black_box(got.copied())
        })
        .report(),
    );
}

fn bench_queue(out: &mut Vec<String>) {
    out.push(
        measure("event_queue/push_pop_1k", || {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(Timestamp::from_micros((i * 7919) % 5000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
        .report(),
    );
}

fn bench_routing(out: &mut Vec<String>) {
    let field = Deployment::grid(20, 20, 1.0);
    let router = GeoRouter::new(&field, 1.5);
    out.push(
        measure("geo_routing/route_corner_to_corner_20x20", || {
            router
                .route(black_box(NodeId(0)), Point::new(19.0, 19.0))
                .unwrap()
        })
        .report(),
    );
    out.push(
        measure("geo_routing/next_hop", || {
            router.next_hop(black_box(NodeId(0)), Point::new(19.0, 19.0))
        })
        .report(),
    );
}

fn bench_payload_sizes(out: &mut Vec<String>) {
    // Not a speed benchmark: documents frame costs stay stable.
    let cfg = envirotrack_net::medium::RadioConfig::default();
    let frame = envirotrack_net::packet::Frame::broadcast(
        NodeId(0),
        heartbeat().kind(),
        heartbeat().encode(),
    );
    out.push(
        measure("frame_airtime/tx_time_heartbeat", || {
            cfg.tx_time(black_box(&frame))
        })
        .report(),
    );
}

fn main() {
    let mut out = Vec::new();
    bench_wire(&mut out);
    bench_window(&mut out);
    bench_lru(&mut out);
    bench_queue(&mut out);
    bench_routing(&mut out);
    bench_payload_sizes(&mut out);
    println!("protocol micro-benchmarks");
    println!("-------------------------");
    for line in out {
        println!("{line}");
    }
}
