//! Paper-figure golden regression tests.
//!
//! Each test runs one experiment at a pinned seed in a small-N
//! configuration, formats the summary statistics into a full-precision
//! digest, and compares it byte-for-byte against the checked-in golden
//! under `tests/goldens/`. The point is to chain the figures to the
//! kernel: a hot-path refactor (event queue, radio medium, telemetry)
//! that silently changes event ordering or RNG consumption shifts these
//! digests and fails here instead of quietly bending the paper's curves.
//!
//! When a shift is *intentional* (a protocol change with an understood
//! effect), regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p envirotrack-bench --test goldens
//! ```
//!
//! and review the golden diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use envirotrack_bench::experiments::{fig3, fig4, fig5, fig6, table1};
use envirotrack_bench::sweep::max_trackable_speed;
use envirotrack_bench::harness::TrackingRun;
use envirotrack_sim::time::SimDuration;

fn check(name: &str, actual: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", "goldens", name]
        .iter()
        .collect();
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir goldens");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); generate with UPDATE_GOLDENS=1")
    });
    assert_eq!(
        expected, actual,
        "golden {name} drifted; if the change is intentional, regenerate \
         with UPDATE_GOLDENS=1 and review the diff"
    );
}

#[test]
fn fig3_trajectory_matches_golden() {
    let fig = fig3::run(3);
    let mut d = String::new();
    let _ = writeln!(d, "lane_y={:.6}", fig.true_lane_y);
    let _ = writeln!(d, "mean_error={:.9}", fig.mean_error);
    let _ = writeln!(d, "max_error={:.9}", fig.max_error);
    let _ = writeln!(d, "labels_seen={}", fig.labels_seen);
    for (t, rep, act) in &fig.points {
        let _ = writeln!(
            d,
            "t_us={} rep=({:.9},{:.9}) act=({:.9},{:.9})",
            t.as_micros(),
            rep.x,
            rep.y,
            act.x,
            act.y
        );
    }
    check("fig3.txt", &d);
}

#[test]
fn fig4_handover_bars_match_golden() {
    let fig = fig4::run(1);
    let mut d = String::new();
    for b in &fig.bars {
        let _ = writeln!(
            d,
            "kmh={:.1} ttl={} success_pct={:.9} handovers={} failures={}",
            b.speed_kmh, b.heartbeat_ttl, b.success_pct, b.handovers, b.failures
        );
    }
    check("fig4.txt", &d);
}

#[test]
fn table1_comm_performance_matches_golden() {
    let table = table1::run(1);
    let mut d = String::new();
    for r in &table.rows {
        let _ = writeln!(
            d,
            "kmh={:.1} hb_loss_pct={:.9} msg_loss_pct={:.9} link_util_pct={:.9} coherent={}",
            r.speed_kmh, r.hb_loss_pct, r.msg_loss_pct, r.link_util_pct, r.all_coherent
        );
    }
    check("table1.txt", &d);
}

#[test]
fn fig5_takeover_speed_point_matches_golden() {
    // One production point of the figure: takeover mode, 0.5 s heartbeats,
    // sensing radius 1 (the full sweep is minutes of wall-clock; one point
    // pins the same code path).
    let template = fig5::takeover_template(SimDuration::from_millis(500), 1.0, 42);
    let takeover = max_trackable_speed(&template, 1, 0.5);
    let relinquish = max_trackable_speed(
        &TrackingRun {
            relinquish: true,
            ..template
        },
        1,
        0.5,
    );
    let d = format!("takeover_speed={takeover:.9}\nrelinquish_speed={relinquish:.9}\n");
    check("fig5.txt", &d);
}

#[test]
fn fig6_crsr_speed_point_matches_golden() {
    // One production point: sensing radius 1 at CR:SR = 2.
    let template = fig6::template(1.0, 2.0, 23);
    let speed = max_trackable_speed(&template, 1, 0.5);
    let d = format!("speed_at_ratio2={speed:.9}\n");
    check("fig6.txt", &d);
}
