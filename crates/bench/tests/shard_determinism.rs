//! Shard-count determinism: a sharded run's merged output is a pure
//! function of the scenario — the shard count, thread scheduling, and
//! barrier batching must never show through. This extends the
//! byte-identical contract of `sweep_determinism.rs` (worker count) and
//! `scale_determinism.rs` (topology/codec toggles) to the lock-step
//! sharded kernel in `envirotrack_core::shard`, including under a chaos
//! plan that partitions the field, injects link faults, and crashes a
//! node mid-run.

use envirotrack_bench::harness::tracker_program;
use envirotrack_core::network::NetworkConfig;
use envirotrack_core::shard::{run_sharded, ShardFault};
use envirotrack_net::medium::LinkFaults;
use envirotrack_sim::time::{SimDuration, Timestamp};
use envirotrack_world::field::NodeId;
use envirotrack_world::scenario::ScaleScenario;

/// Bounded horizon: the pin runs in the debug profile under `cargo test`,
/// so keep the event count modest while still crossing group formation,
/// heartbeats and member reports (same envelope as `scale_determinism`).
const HORIZON: SimDuration = SimDuration::from_secs(3);
const SEED: u64 = 7;
const NODES: u32 = 2_000;

fn at(ms: u64) -> Timestamp {
    Timestamp::ZERO + SimDuration::from_millis(ms)
}

/// Runs the fixed-seed 2k-node tracking field under `shards` shard
/// threads and returns the full observable output: merged telemetry
/// JSONL plus the run-record JSON line.
fn run(shards: usize, faults: &[(Timestamp, ShardFault)]) -> (String, String) {
    let scenario = ScaleScenario {
        nodes: NODES,
        targets: 2,
        speed_hops_per_s: 1.0,
        seed: SEED,
        ..ScaleScenario::default()
    }
    .build();
    let mut net_cfg = NetworkConfig::default();
    net_cfg.radio = net_cfg.radio.with_comm_radius(2.5);
    let out = run_sharded(
        &tracker_program(),
        &scenario.deployment,
        &scenario.environment,
        &net_cfg,
        SEED,
        shards,
        Timestamp::ZERO + HORIZON,
        faults,
    );
    (out.telemetry_jsonl, out.record.to_json())
}

/// Partitions the field in half, garbles the link layer, and crashes a
/// node mid-run — every fault class `run_sharded` quantizes to barriers:
/// channel faults (installed on every shard's medium replica) and node
/// faults (applied on the owning shard only).
fn chaos_plan() -> Vec<(Timestamp, ShardFault)> {
    let halves: Vec<u8> = (0..NODES).map(|i| u8::from(i >= NODES / 2)).collect();
    // The short horizon carries only a few dozen frames, so the fault
    // rates are cranked far above the soak profile — a plan that bites
    // nothing would make the cross-shard comparison vacuous (and the
    // `assert_ne` against the clean run fail).
    let harsh = LinkFaults {
        flip_per_byte: 0.02,
        truncate: 0.2,
        duplicate: 0.3,
        reorder: 0.3,
        reorder_max_delay: SimDuration::from_millis(30),
    };
    vec![
        (at(100), ShardFault::LinkFaultsOn(harsh)),
        (at(400), ShardFault::Partition(halves)),
        (at(800), ShardFault::Crash(NodeId(40))),
        (at(2_000), ShardFault::Revive(NodeId(40))),
        (at(2_400), ShardFault::ClearPartition),
        (at(2_600), ShardFault::LinkFaultsOff),
    ]
}

#[test]
fn fixed_seed_2k_node_run_is_byte_identical_at_1_2_and_4_shards() {
    let (one_tel, one_rec) = run(1, &[]);
    assert!(
        one_tel.contains("net.k1.tx"),
        "the pin must cover live protocol traffic, not an idle field"
    );
    for shards in [2usize, 4] {
        let (tel, rec) = run(shards, &[]);
        assert_eq!(
            one_tel, tel,
            "telemetry JSONL diverged between 1 and {shards} shards"
        );
        assert_eq!(
            one_rec, rec,
            "run record diverged between 1 and {shards} shards"
        );
    }
}

#[test]
fn chaos_plan_stays_byte_identical_across_shard_counts() {
    let plan = chaos_plan();
    let (one_tel, one_rec) = run(1, &plan);
    for shards in [2usize, 4] {
        let (tel, rec) = run(shards, &plan);
        assert_eq!(
            one_tel, tel,
            "chaos telemetry diverged between 1 and {shards} shards"
        );
        assert_eq!(
            one_rec, rec,
            "chaos run record diverged between 1 and {shards} shards"
        );
    }
    // The plan must actually bite: a faulted run cannot match the clean
    // stream, or the quantized faults silently never fired.
    let (clean_tel, _) = run(1, &[]);
    assert_ne!(one_tel, clean_tel, "the chaos plan left no trace");
}
