//! Shard-count and medium-mode determinism: a sharded run's merged output
//! is a pure function of the scenario — the shard count, thread
//! scheduling, barrier batching, and interest routing must never show
//! through. This extends the byte-identical contract of
//! `sweep_determinism.rs` (worker count) and `scale_determinism.rs`
//! (topology/codec toggles) to the lock-step sharded kernel in
//! `envirotrack_core::shard`, including under a chaos plan that partitions
//! the field, injects link faults and burst loss, and crashes a node
//! mid-run. The replicated medium (every resolved transmission routed to
//! every shard) is the full-replay reference; the partitioned medium
//! (interest-routed delivery) must match it byte-for-byte at 1/2/4/8
//! shards while replaying strictly less.

use envirotrack_bench::harness::tracker_program;
use envirotrack_core::network::NetworkConfig;
use envirotrack_core::shard::{run_sharded, IntentStats, MediumMode, ShardFault};
use envirotrack_net::medium::{GilbertElliott, LinkFaults};
use envirotrack_sim::time::{SimDuration, Timestamp};
use envirotrack_world::field::NodeId;
use envirotrack_world::scenario::ScaleScenario;

/// Bounded horizon: the pin runs in the debug profile under `cargo test`,
/// so keep the event count modest while still crossing group formation,
/// heartbeats and member reports (same envelope as `scale_determinism`).
const HORIZON: SimDuration = SimDuration::from_secs(3);
const SEED: u64 = 7;
const NODES: u32 = 2_000;

fn at(ms: u64) -> Timestamp {
    Timestamp::ZERO + SimDuration::from_millis(ms)
}

/// Runs the fixed-seed 2k-node tracking field under `shards` shard
/// threads and returns the full observable output — merged telemetry
/// JSONL plus the run-record JSON line — and the replay-work accounting.
fn run(
    shards: usize,
    mode: MediumMode,
    faults: &[(Timestamp, ShardFault)],
) -> (String, String, IntentStats) {
    let scenario = ScaleScenario {
        nodes: NODES,
        targets: 2,
        speed_hops_per_s: 1.0,
        seed: SEED,
        ..ScaleScenario::default()
    }
    .build();
    let mut net_cfg = NetworkConfig::default();
    net_cfg.radio = net_cfg.radio.with_comm_radius(2.5);
    let out = run_sharded(
        &tracker_program(),
        &scenario.deployment,
        &scenario.environment,
        &net_cfg,
        SEED,
        shards,
        Timestamp::ZERO + HORIZON,
        faults,
        mode,
    );
    (out.telemetry_jsonl, out.record.to_json(), out.intents)
}

/// Partitions the field in half, garbles the link layer, switches on
/// Gilbert–Elliott burst loss, and crashes a node mid-run — every fault
/// class `run_sharded` quantizes to barriers: channel faults (installed on
/// the central scheduler and every shard's executor) and node faults
/// (applied on the owning shard only). Burst loss in particular exercises
/// the per-receiver chain streams that keep partitioned routing honest.
fn chaos_plan() -> Vec<(Timestamp, ShardFault)> {
    let halves: Vec<u8> = (0..NODES).map(|i| u8::from(i >= NODES / 2)).collect();
    // The short horizon carries only a few dozen frames, so the fault
    // rates are cranked far above the soak profile — a plan that bites
    // nothing would make the cross-shard comparison vacuous (and the
    // `assert_ne` against the clean run fail).
    let harsh = LinkFaults {
        flip_per_byte: 0.02,
        truncate: 0.2,
        duplicate: 0.3,
        reorder: 0.3,
        reorder_max_delay: SimDuration::from_millis(30),
    };
    vec![
        (at(100), ShardFault::LinkFaultsOn(harsh)),
        (at(400), ShardFault::Partition(halves)),
        (at(600), ShardFault::BurstLossOn(GilbertElliott::default())),
        (at(800), ShardFault::Crash(NodeId(40))),
        (at(1_800), ShardFault::BurstLossOff),
        (at(2_000), ShardFault::Revive(NodeId(40))),
        (at(2_400), ShardFault::ClearPartition),
        (at(2_600), ShardFault::LinkFaultsOff),
    ]
}

#[test]
fn fixed_seed_2k_node_run_is_byte_identical_at_1_2_4_and_8_shards() {
    let (one_tel, one_rec, _) = run(1, MediumMode::Replicated, &[]);
    assert!(
        one_tel.contains("net.k1.tx"),
        "the pin must cover live protocol traffic, not an idle field"
    );
    assert!(
        one_tel.contains("shard.intents.tail_dropped"),
        "the tail accounting must be part of the compared bytes"
    );
    for shards in [1usize, 2, 4, 8] {
        let (tel, rec, _) = run(shards, MediumMode::Partitioned, &[]);
        assert_eq!(
            one_tel, tel,
            "telemetry JSONL diverged between replicated@1 and partitioned@{shards}"
        );
        assert_eq!(
            one_rec, rec,
            "run record diverged between replicated@1 and partitioned@{shards}"
        );
    }
    let (tel, rec, _) = run(4, MediumMode::Replicated, &[]);
    assert_eq!(one_tel, tel, "replicated medium diverged between 1 and 4 shards");
    assert_eq!(one_rec, rec, "replicated record diverged between 1 and 4 shards");
}

#[test]
fn chaos_plan_stays_byte_identical_across_shards_and_medium_modes() {
    let plan = chaos_plan();
    let (one_tel, one_rec, _) = run(1, MediumMode::Replicated, &plan);
    for shards in [2usize, 4, 8] {
        let (tel, rec, _) = run(shards, MediumMode::Partitioned, &plan);
        assert_eq!(
            one_tel, tel,
            "chaos telemetry diverged between replicated@1 and partitioned@{shards}"
        );
        assert_eq!(
            one_rec, rec,
            "chaos run record diverged between replicated@1 and partitioned@{shards}"
        );
    }
    let (tel, rec, _) = run(4, MediumMode::Replicated, &plan);
    assert_eq!(one_tel, tel, "chaos replicated medium diverged at 4 shards");
    assert_eq!(one_rec, rec, "chaos replicated record diverged at 4 shards");
    // The plan must actually bite: a faulted run cannot match the clean
    // stream, or the quantized faults silently never fired.
    let (clean_tel, _, _) = run(1, MediumMode::Replicated, &[]);
    assert_ne!(one_tel, clean_tel, "the chaos plan left no trace");
}

#[test]
fn interest_routing_reduces_replay_work_and_reuses_buffers() {
    let shards = 4usize;
    let (_, _, rep) = run(shards, MediumMode::Replicated, &[]);
    let (_, _, part) = run(shards, MediumMode::Partitioned, &[]);
    assert_eq!(
        rep.merged, part.merged,
        "the merged intent stream is mode-independent"
    );
    assert!(part.merged > 0, "a busy field must produce intents");
    assert!(part.routed > 0, "partitioned mode must route intents");
    assert_eq!(rep.routed, 0, "replicated mode never interest-routes");
    assert_eq!(part.broadcast, 0, "partitioned mode never broadcasts");
    // The acceptance bound: total replayed intents strictly below the
    // N-fold replay of the merged batches.
    assert!(
        part.replayed() < shards as u64 * part.merged,
        "interest routing saved nothing: {} replayed vs {} merged × {shards}",
        part.replayed(),
        part.merged
    );
    assert!(
        part.replayed() < rep.replayed(),
        "partitioned ({}) must replay strictly less than replicated ({})",
        part.replayed(),
        rep.replayed()
    );
    // Routed and skipped must account for every (resolved tx, shard) pair.
    assert_eq!(part.routed + part.skipped, shards as u64 * part.resolved);
    // Buffer-reuse pins: the merged batch, the per-shard outboxes, and the
    // resolved route buffers are recycled, not reallocated per epoch.
    for stats in [&rep, &part] {
        assert!(
            stats.batch_allocs <= 1,
            "merged batch must be reused: {stats:?}"
        );
        assert!(
            stats.outbox_allocs <= shards as u64,
            "outbox buffers must be reused: {stats:?}"
        );
        assert!(
            stats.resolved_buf_allocs <= 2 * shards as u64,
            "route buffers must be reused: {stats:?}"
        );
    }
}
