//! Determinism pins for the observably-equivalent implementation pairs:
//! a fixed-seed 2k-node tracking run must be *byte-identical* — telemetry
//! JSONL and the run record — whether the neighbor table is built by the
//! grid or by the all-pairs scan, and whether frames carry the binary or
//! the JSON wire codec. Both knobs feed every downstream stream (delivery
//! order, RNG draws, timers), so any ordering difference would show up
//! here long before it corrupted a golden digest.

use envirotrack_bench::harness::tracker_program;
use envirotrack_core::network::{NetworkConfig, SensorNetwork};
use envirotrack_core::report::telemetry_to_jsonl;
use envirotrack_core::wire::WireCodec;
use envirotrack_sim::time::{SimDuration, Timestamp};
use envirotrack_world::grid::NeighborStrategy;
use envirotrack_world::scenario::ScaleScenario;

/// Bounded horizon: the pin runs in the debug profile under
/// `cargo test`, so keep the event count modest while still crossing
/// group formation, heartbeats and member reports.
const HORIZON: SimDuration = SimDuration::from_secs(3);
const SEED: u64 = 7;

fn run(strategy: NeighborStrategy) -> (String, String) {
    run_with_codec(strategy, WireCodec::Binary)
}

fn run_with_codec(strategy: NeighborStrategy, codec: WireCodec) -> (String, String) {
    let scenario = ScaleScenario {
        nodes: 2_000,
        targets: 2,
        speed_hops_per_s: 1.0,
        seed: SEED,
        ..ScaleScenario::default()
    }
    .build();
    let mut net_cfg = NetworkConfig::default();
    net_cfg.radio = net_cfg.radio.with_comm_radius(2.5);
    net_cfg.radio.topology = strategy;
    net_cfg.radio.codec = codec;
    let mut engine = SensorNetwork::build_engine(
        tracker_program(),
        scenario.deployment,
        scenario.environment,
        net_cfg,
        SEED,
    );
    engine.run_until(Timestamp::ZERO + HORIZON);
    let world = engine.world();
    (
        telemetry_to_jsonl(world.telemetry()),
        world.run_record(SEED, HORIZON, 0).to_json(),
    )
}

#[test]
fn fixed_seed_2k_node_run_is_byte_identical_under_grid_and_brute_force() {
    let (grid_telemetry, grid_record) = run(NeighborStrategy::Grid);
    let (brute_telemetry, brute_record) = run(NeighborStrategy::BruteForce);
    assert!(
        grid_telemetry.contains("group.hb"),
        "the pin must cover live protocol traffic, not an idle field"
    );
    assert_eq!(
        grid_telemetry, brute_telemetry,
        "telemetry JSONL diverged between grid and brute-force topologies"
    );
    assert_eq!(
        grid_record, brute_record,
        "run record diverged between grid and brute-force topologies"
    );
}

/// The CRC trailer rides inside the canonical binary frame, so it is part
/// of the charged airtime — and the JSON debug codec, which overrides
/// [`Frame::wire_len`] with the canonical binary length, charges the
/// identical (trailer-inclusive) size. If either side dropped the 4
/// trailer bytes from its stamping, frame timing would shift and the
/// codec byte-identity pins below would cascade.
///
/// [`Frame::wire_len`]: envirotrack_net::packet::Frame::wire_len
#[test]
fn airtime_charges_include_the_crc_trailer_under_either_codec() {
    use envirotrack_core::context::{ContextLabel, ContextTypeId};
    use envirotrack_core::wire::{crc, Heartbeat, Message};
    use envirotrack_net::packet::Frame;
    use envirotrack_world::field::NodeId;
    use envirotrack_world::geometry::Point;

    let msg = Message::Heartbeat(Heartbeat {
        label: ContextLabel {
            type_id: ContextTypeId(0),
            creator: NodeId(3),
            seq: 1,
        },
        leader: NodeId(3),
        leader_pos: Point::new(1.0, 2.0),
        weight: 900,
        hb_seq: 5,
        ttl: 1,
        state: None,
    });
    let bin = msg.encode();
    let (body, trailer) = bin.split_at(bin.len() - crc::TRAILER_BYTES);
    assert_eq!(trailer, crc::crc32(body).to_le_bytes());

    // The frames the network builds: binary carries its own bytes; JSON
    // carries textual bytes but stamps the canonical binary length.
    let f_bin = Frame::broadcast(NodeId(3), msg.kind(), bin.clone());
    let f_json = Frame::broadcast(NodeId(3), msg.kind(), msg.encode_with(WireCodec::Json))
        .with_wire_len(bin.len() as u16);
    assert_eq!(usize::from(f_bin.wire_len), bin.len(), "trailer missing from airtime");
    assert_eq!(f_bin.size_bytes(), f_json.size_bytes());
    assert_eq!(f_bin.on_air_bits(), f_json.on_air_bits());
}

#[test]
fn fixed_seed_2k_node_run_is_byte_identical_under_binary_and_json_codecs() {
    let (bin_telemetry, bin_record) = run_with_codec(NeighborStrategy::Grid, WireCodec::Binary);
    let (json_telemetry, json_record) = run_with_codec(NeighborStrategy::Grid, WireCodec::Json);
    assert!(
        bin_telemetry.contains("group.hb"),
        "the pin must cover live protocol traffic, not an idle field"
    );
    // Airtime is always charged from the canonical binary frame length, so
    // swapping the payload encoding must not move a single event.
    assert_eq!(
        bin_telemetry, json_telemetry,
        "telemetry JSONL diverged between binary and JSON wire codecs"
    );
    assert_eq!(
        bin_record, json_record,
        "run record diverged between binary and JSON wire codecs"
    );
}
