//! Cross-worker determinism: the sweep engine's merged output is a pure
//! function of the cell set — worker count, scheduling, and steal patterns
//! must never show through. This extends the byte-identical-replay
//! contract from `crates/chaos/tests` to the parallel engine.

use envirotrack_bench::sweep::cells::default_cells;
use envirotrack_bench::sweep::run_sweep;

#[test]
fn one_and_eight_workers_merge_byte_identically() {
    let cells = default_cells(8, 21);
    let one = run_sweep(&cells, 1);
    let eight = run_sweep(&cells, 8);
    assert_eq!(
        one.merged_jsonl, eight.merged_jsonl,
        "worker count leaked into the merged output"
    );
    assert_eq!(one.cells_run, 8);
    assert_eq!(eight.cells_run, 8);
    // And an in-between count with a ragged cell/worker ratio.
    let three = run_sweep(&cells, 3);
    assert_eq!(one.merged_jsonl, three.merged_jsonl);
}

#[test]
fn repeated_parallel_sweeps_are_byte_identical() {
    // Same worker count, two executions: steal races may schedule cells
    // differently, the bytes must not move.
    let cells = default_cells(6, 77);
    let a = run_sweep(&cells, 4);
    let b = run_sweep(&cells, 4);
    assert_eq!(a.merged_jsonl, b.merged_jsonl);
}
