//! End-to-end chaos runs: scripted storms and randomized fault plans must
//! leave every invariant intact, and identical inputs must replay
//! byte-identically.

use std::sync::Arc;

use envirotrack_chaos::harness;
use envirotrack_chaos::monitor::{InvariantKind, MonitorConfig};
use envirotrack_chaos::plan::{FaultEvent, FaultPlan};
use envirotrack_core::prelude::*;
use envirotrack_core::report::{telemetry_summary, telemetry_to_jsonl};
use envirotrack_net::medium::GilbertElliott;
use envirotrack_sim::time::{SimDuration, Timestamp};
use envirotrack_world::field::Deployment;
use envirotrack_world::geometry::Point;
use envirotrack_world::scenario::TankScenario;
use envirotrack_world::sensing::Environment;
use envirotrack_world::target::{Channel, Emission, Falloff, Target, TargetId, Trajectory};
use testkit::prelude::*;

const TRACKER: ContextTypeId = ContextTypeId(0);

fn tracker_program() -> Arc<Program> {
    Arc::new(
        Program::builder()
            .context("tracker", |c| {
                c.activation(SensePredicate::threshold(Channel::Magnetic, 0.5))
                    .aggregate(
                        "location",
                        AggregateFn::CenterOfGravity,
                        AggregateInput::Position,
                        SimDuration::from_secs(1),
                        2,
                    )
                    .object("reporter", |o| {
                        o.on_timer("report", SimDuration::from_secs(5), |ctx| {
                            if let Ok(AggValue::Point(p)) = ctx.read("location") {
                                ctx.send_to_base(payload::position(p));
                            }
                        })
                    })
            })
            .build()
            .unwrap(),
    )
}

/// The flagship storm: crash the tracking leader mid-track, partition the
/// field for ten seconds, and run a Gilbert–Elliott burst throughout —
/// the run must finish with zero invariant violations and tracking
/// re-acquired by a live leader.
#[test]
fn chaos_storm_keeps_invariants_and_reacquires_tracking() {
    let seed = 42;
    let scenario = TankScenario::default()
        .with_grid(12, 3)
        .with_speed_hops_per_s(0.03)
        .build();
    let mut engine = SensorNetwork::build_engine(
        tracker_program(),
        scenario.deployment,
        scenario.environment,
        NetworkConfig::default(),
        seed,
    );
    // Let the group form and tracking start.
    engine.run_until(Timestamp::from_secs(30));
    let leader = engine.world().leaders_of_type(TRACKER)[0].0;
    // Split off the right half of the field (the tank crawls on the left).
    let split: Vec<u8> = engine
        .world()
        .deployment()
        .iter()
        .map(|(_, p)| u8::from(p.x >= 6.0))
        .collect();
    let at = Timestamp::from_secs;
    let plan = FaultPlan::new()
        .at(at(31), FaultEvent::Crash(leader))
        .at(at(32), FaultEvent::BurstLossOn(GilbertElliott::default()))
        .at(at(35), FaultEvent::Partition(split))
        .at(
            at(38),
            FaultEvent::ClockRate {
                node: leader,
                rate: 1.05,
            },
        )
        .at(at(40), FaultEvent::Reboot(leader))
        .at(at(45), FaultEvent::Heal)
        .at(at(52), FaultEvent::BurstLossOff);
    let monitor = harness::install(&mut engine, plan, seed, MonitorConfig::default());
    engine.run_until(Timestamp::from_secs(90));

    let world = engine.world();
    let mon = monitor.borrow();
    assert!(
        mon.violations().is_empty(),
        "invariants broken: {:?}",
        mon.violations()
    );
    assert_eq!(mon.trace().len(), 7, "every fault applied: {:?}", mon.trace());
    let leaders = world.leaders_of_type(TRACKER);
    assert_eq!(leaders.len(), 1, "tracking must re-acquire, got {leaders:?}");
    assert!(world.is_alive(leaders[0].0));
    assert!(
        !world.base_log().is_empty(),
        "the pursuer must keep hearing about the tank"
    );
    // The burst and partition losses were counted as such, distinguishable
    // from plain fading.
    let record = harness::summarize(world, seed, Timestamp::from_secs(90), &mon);
    assert!(record.burst_faded > 0, "bursts must have bitten: {record:?}");
    assert!(record.violations == 0);
}

/// Identical seed + identical plan → byte-identical run record and base
/// log, even with every chaos feature exercised.
#[test]
fn identical_seed_and_plan_replay_byte_identically() {
    let transcript = |seed: u64| -> String {
        let scenario = TankScenario::default().with_grid(10, 3).build();
        let mut engine = SensorNetwork::build_engine(
            tracker_program(),
            scenario.deployment,
            scenario.environment,
            NetworkConfig::default(),
            seed,
        );
        let plan = FaultPlan::random(seed, engine.world().deployment().len(), SimDuration::from_secs(60));
        let monitor = harness::install(&mut engine, plan, seed, MonitorConfig::default());
        engine.run_until(Timestamp::from_secs(60));
        let world = engine.world();
        let record = harness::summarize(world, seed, Timestamp::from_secs(60), &monitor.borrow());
        format!("{}\n{}", record.to_json(), world.base_log().to_jsonl())
    };
    assert_eq!(transcript(7), transcript(7), "replay must be byte-identical");
    assert_eq!(transcript(1234), transcript(1234));
}

/// A total radio blackout makes members take over a group whose leader is
/// still alive and heartbeating into the void: the classic engineered
/// duplicate-leader condition. The monitor must flag it, and the violation
/// must carry enough label-scoped telemetry trace to reconstruct the
/// handoff storm.
#[test]
fn blackout_violation_carries_the_labels_trace_tail() {
    let seed = 11;
    let scenario = TankScenario::default()
        .with_grid(12, 3)
        .with_speed_hops_per_s(0.03)
        .build();
    let mut engine = SensorNetwork::build_engine(
        tracker_program(),
        scenario.deployment,
        scenario.environment,
        NetworkConfig::default(),
        seed,
    );
    engine.run_until(Timestamp::from_secs(30));
    assert_eq!(engine.world().leaders_of_type(TRACKER).len(), 1);
    // Every frame lost, forever: not a partition, so the leader-uniqueness
    // check stays armed while receive timeouts promote the members.
    let blackout = GilbertElliott {
        p_good_to_bad: 1.0,
        p_bad_to_good: 0.0,
        loss_good: 1.0,
        loss_bad: 1.0,
    };
    let plan = FaultPlan::new().at(Timestamp::from_secs(31), FaultEvent::BurstLossOn(blackout));
    let monitor = harness::install(&mut engine, plan, seed, MonitorConfig::default());
    engine.run_until(Timestamp::from_secs(60));

    let mon = monitor.borrow();
    let dup = mon
        .violations()
        .iter()
        .find(|v| v.kind == InvariantKind::DuplicateLeaders)
        .expect("total blackout must produce a duplicate-leader violation");
    assert!(
        dup.label_trace.len() >= 16,
        "violation must carry the label's trace tail, got {} events: {:?}",
        dup.label_trace.len(),
        dup.label_trace
    );
    // The tail is protocol history for the violating label: heartbeats at
    // minimum, and the takeover that created the duplicate.
    assert!(
        dup.label_trace.iter().any(|l| l.contains("group.")),
        "trace tail should show group protocol events: {:?}",
        dup.label_trace
    );
    assert_eq!(dup.trace.len(), 1, "the fault plan rides along");
}

/// Same seed + same plan ⇒ byte-identical telemetry: every counter,
/// histogram bucket, and trace event line. This is the determinism
/// contract the telemetry layer promises.
#[test]
fn telemetry_replays_byte_identically() {
    let transcript = |seed: u64| -> String {
        let scenario = TankScenario::default().with_grid(10, 3).build();
        let mut engine = SensorNetwork::build_engine(
            tracker_program(),
            scenario.deployment,
            scenario.environment,
            NetworkConfig::default(),
            seed,
        );
        let plan = FaultPlan::random(seed, engine.world().deployment().len(), SimDuration::from_secs(50));
        let _monitor = harness::install(&mut engine, plan, seed, MonitorConfig::default());
        engine.run_until(Timestamp::from_secs(60));
        let t = engine.world().telemetry();
        format!("{}{}", telemetry_to_jsonl(t), telemetry_summary(t))
    };
    let a = transcript(9);
    assert!(a.contains("\"t\":\"trace\""), "trace must be non-empty");
    assert!(a.contains("== telemetry summary =="));
    assert_eq!(a, transcript(9), "telemetry replay must be byte-identical");
}

/// A small, cheap world for randomized plans: a 5×5 grid watching one
/// stationary target.
fn small_world() -> (Arc<Program>, Deployment, Environment) {
    let program = Arc::new(
        Program::builder()
            .context("tracker", |c| {
                c.activation(SensePredicate::threshold(Channel::Light, 0.5))
            })
            .build()
            .unwrap(),
    );
    let deployment = Deployment::grid(5, 5, 1.0);
    let mut environment = Environment::new();
    environment.add_target(Target::new(
        TargetId(0),
        Trajectory::stationary(Point::new(2.0, 2.0)),
        vec![Emission {
            channel: Channel::Light,
            strength: 1.0,
            falloff: Falloff::Disk { radius: 1.2 },
        }],
    ));
    (program, deployment, environment)
}

prop_test! {
    /// Whatever fault plan a seed generates — crashes, reboots,
    /// partitions, bursts, skews, in any interleaving — no invariant ever
    /// breaks, and the run completes.
    #[test]
    fn random_fault_plans_never_break_invariants(seed: u64) {
        let (program, deployment, environment) = small_world();
        let node_count = deployment.len();
        let horizon = SimDuration::from_secs(40);
        let mut engine = SensorNetwork::build_engine(
            program,
            deployment,
            environment,
            NetworkConfig::default(),
            seed,
        );
        let plan = FaultPlan::random(seed, node_count, horizon);
        let monitor = harness::install(&mut engine, plan.clone(), seed, MonitorConfig::default());
        // Run past the horizon so post-heal settling is observed too.
        engine.run_until(Timestamp::from_secs(50));
        let mon = monitor.borrow();
        prop_assert!(
            mon.violations().is_empty(),
            "seed {} plan {:?} broke invariants: {:?}",
            seed,
            plan,
            mon.violations()
        );
    }
}

/// A chaos cell is a pure function of its spec: running the same cell
/// twice — as two sweep workers would — yields byte-identical records.
#[test]
fn chaos_cells_are_pure_functions_of_their_spec() {
    let run = |seed: u64| {
        let cell = envirotrack_chaos::cell::ChaosCell {
            cols: 6,
            rows: 2,
            horizon: SimDuration::from_secs(20),
            seed,
        };
        envirotrack_chaos::cell::run_cell(&cell, tracker_program()).to_json()
    };
    assert_eq!(run(3), run(3));
    assert_ne!(run(3), run(4), "different seeds must differ somewhere");
}
