//! Chaos harness for the EnviroTrack middleware: scripted fault plans,
//! invariant monitors, and run summaries.
//!
//! A [`plan::FaultPlan`] is a declarative, seed-deterministic schedule of
//! fault events — node crashes and reboots, battery death, region
//! partitions, Gilbert–Elliott burst loss, link-level frame corruption
//! and reordering, bounded clock skew — that
//! [`harness::install`] turns into ordinary kernel events on a
//! [`envirotrack_core::network::SensorNetwork`] engine. A
//! [`monitor::InvariantMonitor`] samples the world on a fixed tick and
//! records [`monitor::Violation`]s of the protocol's safety claims; every
//! violation carries the seed and the fault trace that led to it, so any
//! failure replays from two numbers.
//!
//! ```
//! use std::sync::Arc;
//! use envirotrack_chaos::harness;
//! use envirotrack_chaos::monitor::MonitorConfig;
//! use envirotrack_chaos::plan::{FaultEvent, FaultPlan};
//! use envirotrack_core::api::Program;
//! use envirotrack_core::context::SensePredicate;
//! use envirotrack_core::network::{NetworkConfig, SensorNetwork};
//! use envirotrack_sim::time::Timestamp;
//! use envirotrack_world::field::NodeId;
//! use envirotrack_world::scenario::TankScenario;
//! use envirotrack_world::target::Channel;
//!
//! let program = Arc::new(
//!     Program::builder()
//!         .context("tracker", |c| c.activation(SensePredicate::threshold(Channel::Magnetic, 0.5)))
//!         .build()
//!         .unwrap(),
//! );
//! let world = TankScenario::default().build();
//! let seed = 42;
//! let mut engine = SensorNetwork::build_engine(
//!     program, world.deployment, world.environment, NetworkConfig::default(), seed,
//! );
//! let plan = FaultPlan::new()
//!     .at(Timestamp::from_secs(5), FaultEvent::Crash(NodeId(7)))
//!     .at(Timestamp::from_secs(12), FaultEvent::Reboot(NodeId(7)));
//! let monitor = harness::install(&mut engine, plan, seed, MonitorConfig::default());
//! engine.run_until(Timestamp::from_secs(30));
//! assert!(monitor.borrow().violations().is_empty());
//! ```

pub mod cell;
pub mod harness;
pub mod monitor;
pub mod plan;
