//! Self-contained chaos runs, packaged as sweepable cells.
//!
//! A [`ChaosCell`] names everything one run needs — grid shape, fault
//! horizon, seed — so a sweep engine can fan cells out across worker
//! threads and any worker reproduces the identical run from the spec
//! alone. Determinism rests on per-cell RNG isolation: every random
//! stream inside the run (radio fading, burst chains, backoff, the fault
//! plan itself) is forked from the cell's own seed, so neither worker
//! count nor execution order can leak into the outcome.

use std::sync::Arc;

use envirotrack_core::api::Program;
use envirotrack_core::network::{NetworkConfig, SensorNetwork};
use envirotrack_core::report::RunRecord;
use envirotrack_sim::time::{SimDuration, Timestamp};
use envirotrack_world::scenario::TankScenario;

use crate::harness;
use crate::monitor::MonitorConfig;
use crate::plan::FaultPlan;

/// One chaos run specification: a seeded random fault plan over a tank
/// crossing on a `cols`×`rows` grid, judged for `horizon` of virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosCell {
    /// Grid columns.
    pub cols: u32,
    /// Grid rows.
    pub rows: u32,
    /// Virtual time to simulate; also bounds the fault plan.
    pub horizon: SimDuration,
    /// Seed for the run *and* the random fault plan.
    pub seed: u64,
}

impl ChaosCell {
    /// A small default cell (10×3 grid, 60 s horizon) matching the chaos
    /// replay tests; override the seed per sweep point.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        ChaosCell {
            cols: 10,
            rows: 3,
            horizon: SimDuration::from_secs(60),
            seed,
        }
    }
}

/// Executes one chaos cell to completion: builds the scenario, installs a
/// seed-random [`FaultPlan`] plus the invariant monitor, runs to the
/// horizon and returns the summary record (violations included).
#[must_use]
pub fn run_cell(cell: &ChaosCell, program: Arc<Program>) -> RunRecord {
    let scenario = TankScenario::default()
        .with_grid(cell.cols, cell.rows)
        .build();
    let mut engine = SensorNetwork::build_engine(
        program,
        scenario.deployment,
        scenario.environment,
        NetworkConfig::default(),
        cell.seed,
    );
    let plan = FaultPlan::random(cell.seed, engine.world().deployment().len(), cell.horizon);
    let monitor = harness::install(&mut engine, plan, cell.seed, MonitorConfig::default());
    let end = Timestamp::ZERO + cell.horizon;
    engine.run_until(end);
    let mon = monitor.borrow();
    harness::summarize(engine.world(), cell.seed, end, &mon)
}
