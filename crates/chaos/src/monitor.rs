//! Invariant monitors: the safety claims a chaos run must not break.
//!
//! The monitor samples the world once per tick and checks five invariants:
//!
//! 1. **Leader uniqueness** — two same-type leaders within the proximity
//!    radius track the *same* physical entity, so one of them must yield;
//!    the condition may exist transiently during takeover, but must not
//!    persist past the settle window (the wait timer is the protocol's own
//!    bound on that race).
//! 2. **Aggregate quorum** — an aggregate reported `valid` must actually
//!    hold at least its critical mass of fresh readings.
//! 3. **Partition isolation** — no frame is delivered between nodes in
//!    different partition groups (checked against the medium's delivery
//!    audit log).
//! 4. **Clock monotonicity** — every node's local clock only moves
//!    forward, whatever skew the plan injects.
//! 5. **Corruption rejection** — no garbled frame is ever accepted by the
//!    receive path (checked against the shadow-hash audit counter the
//!    network keeps alongside its CRC verification).
//!
//! Violations carry the seed and the fault trace so far, so a red run
//! reproduces from the report alone.

use envirotrack_core::context::ContextTypeId;
use envirotrack_core::network::SensorNetwork;
use envirotrack_sim::time::{SimDuration, Timestamp};
use envirotrack_telemetry::Telemetry;
use envirotrack_world::field::NodeId;

/// Which invariant a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// Two heavy leaders of one type stayed within the proximity radius
    /// past the settle window.
    DuplicateLeaders,
    /// An aggregate was `valid` with fewer than its critical mass of fresh
    /// readings.
    InvalidAggregate,
    /// A frame crossed an active partition.
    PartitionLeak,
    /// A node's local clock moved backwards.
    ClockRegression,
    /// A corrupted frame slipped past CRC verification and was accepted
    /// (detected by the shadow-hash audit).
    CorruptAccepted,
}

/// One observed invariant violation, with everything needed to replay it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// When the monitor observed it.
    pub at: Timestamp,
    /// The run's simulation seed.
    pub seed: u64,
    /// The broken invariant.
    pub kind: InvariantKind,
    /// What exactly was seen.
    pub detail: String,
    /// The fault events applied before the observation, in order.
    pub trace: Vec<String>,
    /// The tail of the telemetry trace at observation time: the last
    /// events for the violating label when one is implicated, otherwise
    /// the whole-run tail. Rendered, oldest first.
    pub label_trace: Vec<String>,
}

/// Monitor tuning.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Sampling period.
    pub tick: SimDuration,
    /// How long a duplicate-leader condition may persist before it counts
    /// as a violation. Should exceed the wait timer plus takeover jitter;
    /// the default covers the paper's default timers with slack.
    pub settle: SimDuration,
    /// Two same-type leaders closer than this are considered duplicates
    /// (mirror of the middleware's proximity radius).
    pub proximity_radius: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            tick: SimDuration::from_millis(250),
            settle: SimDuration::from_secs(5),
            proximity_radius: 3.0,
        }
    }
}

/// The sampling monitor. Create with [`InvariantMonitor::new`], then let
/// [`crate::harness::install`] drive it, or call
/// [`InvariantMonitor::check`] by hand from a custom harness.
#[derive(Debug)]
pub struct InvariantMonitor {
    seed: u64,
    cfg: MonitorConfig,
    /// Last local-clock sample per node.
    last_clock: Vec<SimDuration>,
    /// When a duplicate-leader condition started, per context type.
    dup_since: Vec<Option<Timestamp>>,
    /// Shadow-hash audit counter value already reported, so each accepted
    /// corrupt frame yields exactly one violation.
    corrupt_accepted_seen: u64,
    trace: Vec<String>,
    violations: Vec<Violation>,
    /// The run's telemetry registry (shared with the world), read to
    /// attach protocol trace tails to violations.
    telemetry: Telemetry,
}

impl InvariantMonitor {
    /// Creates a monitor sized to `world`.
    #[must_use]
    pub fn new(seed: u64, world: &SensorNetwork, cfg: MonitorConfig) -> Self {
        InvariantMonitor {
            seed,
            cfg,
            last_clock: vec![SimDuration::ZERO; world.deployment().len()],
            dup_since: vec![None; world.context_type_count()],
            corrupt_accepted_seen: 0,
            trace: Vec::new(),
            violations: Vec::new(),
            telemetry: world.telemetry().clone(),
        }
    }

    /// The monitor configuration.
    #[must_use]
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Records an applied fault event for violation traces.
    pub fn note_fault(&mut self, at: Timestamp, description: String) {
        self.trace.push(format!("{at}: {description}"));
    }

    /// All violations observed so far.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The fault events applied so far.
    #[must_use]
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// How many label-scoped trace events a violation carries.
    const LABEL_TRACE_EVENTS: usize = 32;
    /// How many whole-run trace events a label-free violation carries.
    const TAIL_TRACE_EVENTS: usize = 16;

    fn record(&mut self, at: Timestamp, kind: InvariantKind, detail: String, label: Option<&str>) {
        let label_trace = match label {
            Some(l) => self.telemetry.events_for_label(l, Self::LABEL_TRACE_EVENTS),
            None => self.telemetry.last_events(Self::TAIL_TRACE_EVENTS),
        };
        self.violations.push(Violation {
            at,
            seed: self.seed,
            kind,
            detail,
            trace: self.trace.clone(),
            label_trace,
        });
    }

    /// Runs every invariant check once. Called on each monitor tick.
    pub fn check(&mut self, world: &mut SensorNetwork, now: Timestamp) {
        self.check_clocks(world, now);
        self.check_leaders(world, now);
        self.check_aggregates(world, now);
        self.check_deliveries(world, now);
        self.check_corruption(now);
    }

    /// A frame garbled in flight must fail CRC verification and be
    /// dropped; the network's shadow-hash audit counts any that were
    /// accepted anyway. The counter staying at zero is the soak harness's
    /// core integrity claim.
    fn check_corruption(&mut self, now: Timestamp) {
        let accepted = self.telemetry.counter("net.corrupt_accepted");
        if accepted > self.corrupt_accepted_seen {
            self.record(
                now,
                InvariantKind::CorruptAccepted,
                format!(
                    "{} corrupted frame(s) accepted past CRC verification",
                    accepted - self.corrupt_accepted_seen
                ),
                None,
            );
            self.corrupt_accepted_seen = accepted;
        }
    }

    fn check_clocks(&mut self, world: &SensorNetwork, now: Timestamp) {
        for i in 0..self.last_clock.len() {
            let node = NodeId(u32::try_from(i).unwrap_or(u32::MAX));
            let c = world.local_clock(node, now);
            if c < self.last_clock[i] {
                self.record(
                    now,
                    InvariantKind::ClockRegression,
                    format!(
                        "node {i} local clock went {} -> {c}",
                        self.last_clock[i]
                    ),
                    None,
                );
            }
            self.last_clock[i] = c;
        }
    }

    fn check_leaders(&mut self, world: &SensorNetwork, now: Timestamp) {
        // Leader uniqueness is a claim about a *connected* network: while a
        // partition is active, both sides of a split group correctly elect
        // their own leader, so the check pauses and the settle clock
        // restarts after the heal.
        if world.partition().is_some() {
            for s in &mut self.dup_since {
                *s = None;
            }
            return;
        }
        for t in 0..self.dup_since.len() {
            let tid = ContextTypeId(u16::try_from(t).unwrap_or(u16::MAX));
            let leaders = world.leaders_detailed(tid);
            let mut close_pair = None;
            'outer: for (i, a) in leaders.iter().enumerate() {
                for b in leaders.iter().skip(i + 1) {
                    if a.3.distance_to(b.3) <= self.cfg.proximity_radius {
                        close_pair = Some((a.0, b.0, a.1));
                        break 'outer;
                    }
                }
            }
            match (close_pair, self.dup_since[t]) {
                (None, _) => self.dup_since[t] = None,
                (Some(_), None) => self.dup_since[t] = Some(now),
                (Some((a, b, label)), Some(since)) => {
                    if now.saturating_since(since) > self.cfg.settle {
                        self.record(
                            now,
                            InvariantKind::DuplicateLeaders,
                            format!(
                                "type {t}: nodes {} and {} both lead within {} units since {since}",
                                a.0, b.0, self.cfg.proximity_radius
                            ),
                            Some(&label.to_string()),
                        );
                        // Start a new episode so one long condition does
                        // not flood the report.
                        self.dup_since[t] = Some(now);
                    }
                }
            }
        }
    }

    fn check_aggregates(&mut self, world: &SensorNetwork, now: Timestamp) {
        for t in 0..self.dup_since.len() {
            let tid = ContextTypeId(u16::try_from(t).unwrap_or(u16::MAX));
            for (node, rows) in world.aggregate_health(tid, now) {
                for row in rows {
                    if row.valid && row.fresh < row.need {
                        self.record(
                            now,
                            InvariantKind::InvalidAggregate,
                            format!(
                                "node {} aggregate '{}' valid with {}/{} fresh readings",
                                node.0, row.variable, row.fresh, row.need
                            ),
                            None,
                        );
                    }
                }
            }
        }
    }

    /// Drains the medium's delivery log and checks each delivered pair
    /// against the *currently* active partition mask. The harness also
    /// calls this immediately before changing the mask, so entries are
    /// always judged by the mask in force when they were delivered.
    pub fn check_deliveries(&mut self, world: &mut SensorNetwork, now: Timestamp) {
        let log = world.take_delivery_log();
        let Some(groups) = world.partition() else {
            return;
        };
        for (t, src, dst) in log {
            if groups[src.index()] != groups[dst.index()] {
                self.record(
                    now,
                    InvariantKind::PartitionLeak,
                    format!(
                        "frame delivered {} -> {} across partition at {t}",
                        src.0, dst.0
                    ),
                    None,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_settle_exceeds_the_default_wait_timer() {
        let cfg = MonitorConfig::default();
        // Paper defaults: wait timer = 4.2 × 500 ms = 2.1 s.
        assert!(cfg.settle > SimDuration::from_millis(2100));
        assert!(cfg.tick < cfg.settle);
    }
}
