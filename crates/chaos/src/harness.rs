//! Installing a fault plan and monitor into an engine.
//!
//! [`install`] turns a [`FaultPlan`] into ordinary kernel events on an
//! existing [`Engine<SensorNetwork>`] and starts the recurring invariant
//! tick, returning the shared [`InvariantMonitor`]. The harness owns no
//! event loop of its own: everything rides the simulation kernel, so fault
//! timing composes deterministically with protocol traffic under a single
//! seed.

use std::cell::RefCell;
use std::rc::Rc;

use envirotrack_core::network::SensorNetwork;
use envirotrack_core::report::RunRecord;
use envirotrack_sim::engine::{Engine, Kernel};
use envirotrack_sim::time::Timestamp;
use envirotrack_world::field::NodeId;

use crate::monitor::{InvariantMonitor, MonitorConfig};
use crate::plan::{FaultEvent, FaultPlan};

/// Shared monitor handle: kernel events and the caller both sample it.
pub type MonitorHandle = Rc<RefCell<InvariantMonitor>>;

/// Battery budgets activated so far: `(node, millijoules)`.
type Budgets = Rc<RefCell<Vec<(NodeId, f64)>>>;

/// Schedules every event of `plan` on the engine's kernel, enables the
/// medium's delivery audit log, and starts the invariant tick. Returns the
/// monitor to inspect after the run.
///
/// # Panics
///
/// Panics when the plan fails [`FaultPlan::validate`] against the engine's
/// deployment — a malformed plan is a harness bug, not a run outcome.
pub fn install(
    engine: &mut Engine<SensorNetwork>,
    plan: FaultPlan,
    seed: u64,
    cfg: MonitorConfig,
) -> MonitorHandle {
    plan.validate(engine.world().deployment().len())
        .expect("fault plan must match the deployment");
    let monitor: MonitorHandle =
        Rc::new(RefCell::new(InvariantMonitor::new(seed, engine.world(), cfg)));
    let budgets: Budgets = Rc::new(RefCell::new(Vec::new()));
    engine.world_mut().set_delivery_log(true);

    let k = engine.kernel_mut();
    for (at, event) in plan.events().iter().cloned() {
        let mon = Rc::clone(&monitor);
        let bud = Rc::clone(&budgets);
        k.schedule_at(at.max(k.now()), move |w: &mut SensorNetwork, k| {
            apply_fault(w, k, &mon, &bud, event);
        });
    }
    let mon = Rc::clone(&monitor);
    let bud = Rc::clone(&budgets);
    let first = k.now() + cfg.tick;
    k.schedule_at(first, move |w: &mut SensorNetwork, k| {
        monitor_tick(w, k, mon, bud, cfg);
    });
    monitor
}

/// One run summary for JSON-lines emission: the world's counters plus the
/// monitor's violation count.
#[must_use]
pub fn summarize(
    world: &SensorNetwork,
    seed: u64,
    now: Timestamp,
    monitor: &InvariantMonitor,
) -> RunRecord {
    world.run_record(
        seed,
        now.saturating_since(Timestamp::ZERO),
        monitor.violations().len() as u64,
    )
}

fn apply_fault(
    w: &mut SensorNetwork,
    k: &mut Kernel<SensorNetwork>,
    monitor: &MonitorHandle,
    budgets: &Budgets,
    event: FaultEvent,
) {
    monitor
        .borrow_mut()
        .note_fault(k.now(), event.describe());
    match event {
        FaultEvent::Crash(node) => w.kill_node(node),
        FaultEvent::Reboot(node) => {
            w.revive_node(node);
            w.sense_tick(k, node);
        }
        FaultEvent::BatteryBudget { node, millijoules } => {
            budgets.borrow_mut().push((node, millijoules));
        }
        FaultEvent::Partition(groups) => {
            // Judge the log by the outgoing mask before switching.
            monitor.borrow_mut().check_deliveries(w, k.now());
            w.set_partition(Some(groups));
        }
        FaultEvent::Heal => {
            monitor.borrow_mut().check_deliveries(w, k.now());
            w.set_partition(None);
            // Replicated directories diverge during the split; one
            // anti-entropy round per live replica starts repair now
            // instead of waiting out the gossip period.
            w.kick_directory_gossip(k);
        }
        FaultEvent::BurstLossOn(model) => w.set_burst_loss(Some(model)),
        FaultEvent::BurstLossOff => w.set_burst_loss(None),
        FaultEvent::LinkFaultsOn(faults) => w.set_link_faults(Some(faults)),
        FaultEvent::LinkFaultsOff => w.set_link_faults(None),
        FaultEvent::ClockRate { node, rate } => w.set_clock_rate(node, rate, k.now()),
    }
}

fn monitor_tick(
    w: &mut SensorNetwork,
    k: &mut Kernel<SensorNetwork>,
    monitor: MonitorHandle,
    budgets: Budgets,
    cfg: MonitorConfig,
) {
    // Reschedule first so a panicking check still leaves a live loop when
    // tests catch and continue.
    let mon = Rc::clone(&monitor);
    let bud = Rc::clone(&budgets);
    k.schedule_at(k.now() + cfg.tick, move |w: &mut SensorNetwork, k| {
        monitor_tick(w, k, mon, bud, cfg);
    });
    // Battery death: a budgeted node dies for good once its cumulative
    // protocol energy crosses the line.
    for (node, limit) in budgets.borrow().iter() {
        if w.is_alive(*node) && w.energy_at(*node).total_millijoules() > *limit {
            monitor
                .borrow_mut()
                .note_fault(k.now(), format!("battery died on node {}", node.0));
            w.kill_node(*node);
        }
    }
    monitor.borrow_mut().check(w, k.now());
}
