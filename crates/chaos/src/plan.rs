//! Declarative fault plans.
//!
//! A [`FaultPlan`] is the whole chaos script of a run: a list of
//! `(time, event)` pairs, built either explicitly or pseudo-randomly from
//! a seed via [`FaultPlan::random`]. Plans carry no behaviour of their own
//! — [`crate::harness::install`] schedules them — so the same plan value
//! replays identically on any engine with the same seed.

use envirotrack_net::medium::{GilbertElliott, LinkFaults};
use envirotrack_sim::rng::SimRng;
use envirotrack_sim::time::{SimDuration, Timestamp};
use envirotrack_world::field::NodeId;

/// One scripted fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// The node dies: no sensing, processing, or transmission.
    Crash(NodeId),
    /// The node reboots with amnesia (fresh protocol state) and restarts
    /// its sensing loop.
    Reboot(NodeId),
    /// From this point on the node dies permanently once its cumulative
    /// protocol energy exceeds the budget (checked on monitor ticks).
    BatteryBudget {
        /// The constrained node.
        node: NodeId,
        /// Remaining energy budget in millijoules.
        millijoules: f64,
    },
    /// Install a partition mask: nodes with different group values cannot
    /// exchange frames. The vector must name a group per node.
    Partition(Vec<u8>),
    /// Remove any active partition mask.
    Heal,
    /// Install a Gilbert–Elliott burst-loss model on the channel.
    BurstLossOn(GilbertElliott),
    /// Remove the burst-loss model (base fading remains).
    BurstLossOff,
    /// Install a link-level fault injector: bit-flip corruption,
    /// truncation, duplication, and bounded reordering of frames in
    /// flight.
    LinkFaultsOn(LinkFaults),
    /// Remove the link-level fault injector.
    LinkFaultsOff,
    /// Set a node's clock rate (1.0 = ideal). Must stay within the
    /// bounded-skew range `[0.5, 2.0]`.
    ClockRate {
        /// The skewed node.
        node: NodeId,
        /// Local seconds per global second.
        rate: f64,
    },
}

impl FaultEvent {
    /// A compact human-readable form, used in violation traces.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            FaultEvent::Crash(n) => format!("crash node {}", n.0),
            FaultEvent::Reboot(n) => format!("reboot node {}", n.0),
            FaultEvent::BatteryBudget { node, millijoules } => {
                format!("battery budget node {} = {millijoules:.2} mJ", node.0)
            }
            FaultEvent::Partition(groups) => {
                let distinct = {
                    let mut g: Vec<u8> = groups.clone();
                    g.sort_unstable();
                    g.dedup();
                    g.len()
                };
                format!("partition into {distinct} regions")
            }
            FaultEvent::Heal => "heal partition".to_string(),
            FaultEvent::BurstLossOn(m) => {
                format!("burst loss on (bad={:.2})", m.loss_bad)
            }
            FaultEvent::BurstLossOff => "burst loss off".to_string(),
            FaultEvent::LinkFaultsOn(f) => {
                format!("link faults on (flip/byte={:.0e})", f.flip_per_byte)
            }
            FaultEvent::LinkFaultsOff => "link faults off".to_string(),
            FaultEvent::ClockRate { node, rate } => {
                format!("clock rate node {} = {rate:.3}", node.0)
            }
        }
    }
}

/// A seed-deterministic schedule of fault events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<(Timestamp, FaultEvent)>,
}

impl FaultPlan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Appends one event; chainable. Events need not be added in time
    /// order — the kernel orders them.
    #[must_use]
    pub fn at(mut self, time: Timestamp, event: FaultEvent) -> Self {
        self.events.push((time, event));
        self
    }

    /// The scheduled events in insertion order.
    #[must_use]
    pub fn events(&self) -> &[(Timestamp, FaultEvent)] {
        &self.events
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks the plan against a deployment size.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first invalid event: a node id out of
    /// range, a partition mask of the wrong length, a clock rate outside
    /// `[0.5, 2.0]`, or a non-positive battery budget.
    pub fn validate(&self, node_count: usize) -> Result<(), String> {
        for (t, ev) in &self.events {
            let bad_node = |n: NodeId| n.index() >= node_count;
            match ev {
                FaultEvent::Crash(n) | FaultEvent::Reboot(n) if bad_node(*n) => {
                    return Err(format!("{}: node {} out of range", t, n.0));
                }
                FaultEvent::BatteryBudget { node, millijoules } => {
                    if bad_node(*node) {
                        return Err(format!("{}: node {} out of range", t, node.0));
                    }
                    if *millijoules <= 0.0 {
                        return Err(format!("{t}: battery budget must be positive"));
                    }
                }
                FaultEvent::Partition(groups) if groups.len() != node_count => {
                    return Err(format!(
                        "{}: partition mask has {} entries for {} nodes",
                        t,
                        groups.len(),
                        node_count
                    ));
                }
                FaultEvent::ClockRate { node, rate } => {
                    if bad_node(*node) {
                        return Err(format!("{}: node {} out of range", t, node.0));
                    }
                    if !(0.5..=2.0).contains(rate) {
                        return Err(format!("{t}: clock rate {rate} outside [0.5, 2.0]"));
                    }
                }
                FaultEvent::LinkFaultsOn(f) => {
                    for (name, p) in [
                        ("flip_per_byte", f.flip_per_byte),
                        ("truncate", f.truncate),
                        ("duplicate", f.duplicate),
                        ("reorder", f.reorder),
                    ] {
                        if !(0.0..=1.0).contains(&p) {
                            return Err(format!("{t}: link-fault {name} {p} outside [0, 1]"));
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Generates a pseudo-random but well-formed plan from a seed: a
    /// handful of crash/reboot pairs, at most one partition interval
    /// (healed before the horizon), at most one burst-loss interval, at
    /// most one link-fault interval, and a few bounded clock skews. Same
    /// seed, node count, and horizon → the identical plan.
    #[must_use]
    pub fn random(seed: u64, node_count: usize, horizon: SimDuration) -> Self {
        let mut rng = SimRng::seed_from(seed).fork("fault-plan");
        let span = horizon.as_micros().max(1);
        let mut plan = FaultPlan::new();
        let when = |rng: &mut SimRng, lo_frac: u64, hi_frac: u64| {
            // A uniform instant in [span*lo/8, span*hi/8).
            let lo = span * lo_frac / 8;
            let hi = (span * hi_frac / 8).max(lo + 1);
            Timestamp::from_micros(lo + rng.below(hi - lo))
        };

        // Crash/reboot pairs on distinct random nodes.
        let crashes = 1 + rng.below(3);
        for _ in 0..crashes {
            let node = NodeId(u32::try_from(rng.below(node_count as u64)).unwrap_or(0));
            let down = when(&mut rng, 1, 4);
            let up = down + SimDuration::from_micros(1 + rng.below(span / 4));
            plan = plan
                .at(down, FaultEvent::Crash(node))
                .at(up, FaultEvent::Reboot(node));
        }
        // One optional partition interval, split along a random group map.
        if rng.chance(0.7) {
            let groups = (0..node_count)
                .map(|_| u8::try_from(rng.below(2)).unwrap_or(0))
                .collect();
            let start = when(&mut rng, 2, 5);
            let end = start + SimDuration::from_micros(1 + rng.below(span / 4));
            plan = plan
                .at(start, FaultEvent::Partition(groups))
                .at(end, FaultEvent::Heal);
        }
        // One optional burst-loss interval with the default model.
        if rng.chance(0.7) {
            let start = when(&mut rng, 1, 5);
            let end = start + SimDuration::from_micros(1 + rng.below(span / 4));
            plan = plan
                .at(start, FaultEvent::BurstLossOn(GilbertElliott::default()))
                .at(end, FaultEvent::BurstLossOff);
        }
        // One optional link-fault interval with the default soak profile.
        if rng.chance(0.7) {
            let start = when(&mut rng, 1, 5);
            let end = start + SimDuration::from_micros(1 + rng.below(span / 4));
            plan = plan
                .at(start, FaultEvent::LinkFaultsOn(LinkFaults::default()))
                .at(end, FaultEvent::LinkFaultsOff);
        }
        // A few bounded clock skews (±10 %).
        let skews = rng.below(3);
        for _ in 0..skews {
            let node = NodeId(u32::try_from(rng.below(node_count as u64)).unwrap_or(0));
            let rate = 0.9 + rng.below(21) as f64 * 0.01;
            plan = plan.at(when(&mut rng, 0, 3), FaultEvent::ClockRate { node, rate });
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_each_malformed_event() {
        let ok = FaultPlan::new()
            .at(Timestamp::from_secs(1), FaultEvent::Crash(NodeId(3)))
            .at(Timestamp::from_secs(2), FaultEvent::Partition(vec![0; 9]))
            .at(
                Timestamp::from_secs(3),
                FaultEvent::ClockRate {
                    node: NodeId(0),
                    rate: 1.05,
                },
            );
        assert!(ok.validate(9).is_ok());

        let bad_node =
            FaultPlan::new().at(Timestamp::from_secs(1), FaultEvent::Crash(NodeId(9)));
        assert!(bad_node.validate(9).unwrap_err().contains("out of range"));

        let bad_mask =
            FaultPlan::new().at(Timestamp::from_secs(1), FaultEvent::Partition(vec![0; 4]));
        assert!(bad_mask.validate(9).unwrap_err().contains("4 entries"));

        let bad_rate = FaultPlan::new().at(
            Timestamp::from_secs(1),
            FaultEvent::ClockRate {
                node: NodeId(0),
                rate: 3.0,
            },
        );
        assert!(bad_rate.validate(9).unwrap_err().contains("clock rate"));

        let bad_budget = FaultPlan::new().at(
            Timestamp::from_secs(1),
            FaultEvent::BatteryBudget {
                node: NodeId(0),
                millijoules: 0.0,
            },
        );
        assert!(bad_budget.validate(9).unwrap_err().contains("battery"));
    }

    #[test]
    fn random_plans_are_deterministic_and_valid() {
        for seed in 0..20 {
            let a = FaultPlan::random(seed, 25, SimDuration::from_secs(60));
            let b = FaultPlan::random(seed, 25, SimDuration::from_secs(60));
            assert_eq!(a, b, "seed {seed} not deterministic");
            a.validate(25).expect("random plans must be well-formed");
            assert!(!a.is_empty());
        }
        // Different seeds diverge (overwhelmingly likely across 20 seeds).
        let distinct: std::collections::BTreeSet<usize> = (0..20)
            .map(|s| FaultPlan::random(s, 25, SimDuration::from_secs(60)).len())
            .collect();
        assert!(distinct.len() > 1 || FaultPlan::random(0, 25, SimDuration::from_secs(60)) != FaultPlan::random(1, 25, SimDuration::from_secs(60)));
    }

    #[test]
    fn describe_is_stable_and_informative() {
        assert_eq!(FaultEvent::Crash(NodeId(4)).describe(), "crash node 4");
        assert_eq!(
            FaultEvent::Partition(vec![0, 1, 0, 1]).describe(),
            "partition into 2 regions"
        );
        assert!(FaultEvent::BurstLossOn(GilbertElliott::default())
            .describe()
            .contains("0.85"));
    }
}
