//! Value-generation strategies: the proptest-compatible combinator
//! surface over the choice tape.
//!
//! Every strategy is a pure function from draws on a [`Gen`] to a value,
//! arranged so that the all-zero tape produces the strategy's minimal
//! output (lowest range endpoint, empty collection, `None`, first
//! `prop_oneof!` arm, recursion leaf). Shrinking then needs no per-type
//! logic: the runner lowers the tape and regenerates.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::tape::Gen;

/// A generator of test-case values.
///
/// Object-safe core plus provided combinators mirroring the `proptest`
/// names (`prop_map`, `prop_filter`, `prop_recursive`, `boxed`) so ported
/// suites keep their shape.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the choice tape.
    fn generate(&self, g: &mut Gen) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `accept` holds. The generator retries
    /// locally a few times, then rejects the whole case (the runner
    /// replaces rejected cases; they never count as failures).
    fn prop_filter<F>(self, whence: &'static str, accept: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            accept,
        }
    }

    /// Wraps this strategy (the recursion leaf) in up to `depth` levels of
    /// `recurse`, which receives a strategy for the next level down.
    /// `desired_size` and `expected_branch_size` are accepted for
    /// `proptest` signature compatibility; branching probability is
    /// derived from `expected_branch_size`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        desired_size: u32,
        expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let _ = desired_size;
        let branch = f64::from(expected_branch_size.max(1));
        Recursive {
            base: self.boxed(),
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
            depth,
            recurse_prob: branch / (branch + 1.0),
        }
    }

    /// Type-erases this strategy behind a cheaply cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy (what `prop_recursive`
/// closures receive as `inner`).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        self.0.generate(g)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, g: &mut Gen) -> O {
        (self.f)(self.inner.generate(g))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    accept: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, g: &mut Gen) -> S::Value {
        // Local retries draw further along the tape, so a replayed tape
        // reproduces the same retry pattern deterministically.
        for _ in 0..8 {
            let v = self.inner.generate(g);
            if (self.accept)(&v) {
                return v;
            }
        }
        let _ = self.whence;
        crate::reject()
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
    recurse_prob: f64,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            base: self.base.clone(),
            recurse: Rc::clone(&self.recurse),
            depth: self.depth,
            recurse_prob: self.recurse_prob,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        // The zero draw picks the leaf, so shrinking prunes recursion.
        if self.depth == 0 || g.fraction() >= self.recurse_prob {
            return self.base.generate(g);
        }
        let inner = Recursive {
            depth: self.depth - 1,
            ..self.clone()
        }
        .boxed();
        (self.recurse)(inner).generate(g)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _g: &mut Gen) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies; backs [`prop_oneof!`].
/// The zero draw selects the first arm, which shrinking therefore
/// gravitates toward (list the simplest arm first).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms (at least one).
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        let idx = g.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(g)
    }
}

/// The canonical strategy for a whole type; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full-range strategy for `T` — `any::<u32>()` and friends.
#[must_use]
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! any_uint {
    ($($ty:ty),+) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn generate(&self, g: &mut Gen) -> $ty {
                g.draw() as $ty
            }
        }
    )+};
}
any_uint!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, g: &mut Gen) -> bool {
        g.bool()
    }
}

macro_rules! range_uint {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, g: &mut Gen) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + g.below(span) as $ty
            }
        }
    )+};
}
range_uint!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, g: &mut Gen) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + g.fraction() * (self.end - self.start);
        // Rounding can land exactly on the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, g: &mut Gen) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(g),)+)
            }
        }
    )+};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Collection and option strategies under the `prop::` paths ported
/// suites already use (`prop::collection::vec`, `prop::option::of`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Gen, Strategy};
        use std::ops::Range;

        /// A `Vec` of `element` values with a length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, g: &mut Gen) -> Vec<S::Value> {
                let n = self.len.clone().generate(g);
                (0..n).map(|_| self.element.generate(g)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use super::super::{Gen, Strategy};

        /// `None` or `Some(inner)`; shrinks toward `None`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// See [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, g: &mut Gen) -> Option<S::Value> {
                if g.bool() {
                    Some(self.inner.generate(g))
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zero_gen() -> Gen {
        Gen::replay(vec![])
    }

    #[test]
    fn zero_tape_yields_minimal_values() {
        let mut g = zero_gen();
        assert_eq!((3u32..9).generate(&mut g), 3);
        assert_eq!((-2.0..5.0f64).generate(&mut g), -2.0);
        assert_eq!(any::<u64>().generate(&mut g), 0);
        assert!(prop::collection::vec(0u8..10, 0..5)
            .generate(&mut g)
            .is_empty());
        assert_eq!(prop::option::of(0u8..10).generate(&mut g), None);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        assert_eq!(u.generate(&mut g), 1);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut g = Gen::random(99);
        for _ in 0..500 {
            let v = (10u64..17).generate(&mut g);
            assert!((10..17).contains(&v));
            let f = (-1.0..1.0f64).generate(&mut g);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let s = (0u32..100)
            .prop_map(|v| v * 2)
            .prop_filter("nonzero", |v| *v != 0);
        let mut g = Gen::random(5);
        for _ in 0..100 {
            let v = s.generate(&mut g);
            assert!(v != 0 && v % 2 == 0 && v < 200);
        }
    }

    #[test]
    fn recursive_respects_its_depth_bound() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = Just(())
            .prop_map(|()| Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut g = Gen::random(11);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = s.generate(&mut g);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion never branched");
    }

    #[test]
    fn vec_lengths_respect_their_range() {
        let s = prop::collection::vec(any::<u8>(), 2..5);
        let mut g = Gen::random(3);
        for _ in 0..200 {
            let v = s.generate(&mut g);
            assert!((2..5).contains(&v.len()));
        }
    }
}
