//! The property runner: case generation, rejection accounting, and
//! tape-level shrinking of failing cases.
//!
//! A failing case is a recorded choice tape (see [`crate::tape`]). The
//! shrinker never needs to understand values: it deletes tape chunks,
//! zeroes entries, binary-searches entries downward, and decrements them,
//! accepting any mutation that still fails and is shortlex-smaller. The
//! minimal tape regenerates the minimal failing value, which is what the
//! failure message reports.

use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

use crate::strategy::Strategy;
use crate::tape::Gen;

/// Sentinel panic payload for a rejected (not failed) case; raised by
/// `prop_assume!` and exhausted `prop_filter` retries.
pub(crate) struct Rejected;

/// Aborts the current test case without failing it. The runner generates
/// a replacement case (up to [`Config::max_rejects`] times per property).
pub fn reject() -> ! {
    panic::panic_any(Rejected)
}

/// Runner parameters. `Config::default()` honours the `TESTKIT_CASES` and
/// `TESTKIT_SEED` environment variables, so a failing run can be
/// reproduced (or a suite broadened) without editing tests.
#[derive(Debug, Clone)]
pub struct Config {
    /// Passing cases required per property.
    pub cases: u32,
    /// Master seed; each case's seed derives from it deterministically.
    pub seed: u64,
    /// Cap on rejected cases per property before giving up.
    pub max_rejects: u32,
    /// Cap on candidate executions while shrinking a failure.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        let env_u64 = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
        Config {
            cases: env_u64("TESTKIT_CASES").map_or(64, |v| v.max(1) as u32),
            seed: env_u64("TESTKIT_SEED").unwrap_or(0x5eed_cafe_f00d_d00d),
            max_rejects: 4096,
            max_shrink_iters: 1024,
        }
    }
}

impl Config {
    /// The default configuration with an explicit case count.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// What one executed case did.
enum Outcome {
    Pass,
    Reject,
    Fail(String),
}

/// One executed case: its outcome, the recorded tape, and the generated
/// value's `Debug` rendering (absent if generation itself bailed).
struct CaseRun {
    outcome: Outcome,
    tape: Vec<u64>,
    value: Option<String>,
}

/// A fully shrunk property failure.
pub(crate) struct Failure {
    pub value: String,
    pub message: String,
    pub case_index: u32,
    pub shrink_iters: u32,
}

/// Why a run did not complete its configured cases.
pub(crate) enum RunError {
    /// A case failed; carries the shrunk counterexample.
    Failed(Failure),
    /// More cases were rejected than [`Config::max_rejects`] allows.
    TooManyRejects { rejected: u32, cases: u32 },
}

impl RunError {
    #[cfg(test)]
    pub(crate) fn into_failure(self) -> Failure {
        match self {
            RunError::Failed(f) => f,
            RunError::TooManyRejects { .. } => panic!("expected a failure, got rejections"),
        }
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "test case panicked with a non-string payload".to_string()
    }
}

fn run_case<S, F>(strategy: &S, test: &F, mut g: Gen) -> CaseRun
where
    S: Strategy,
    S::Value: Debug,
    F: Fn(S::Value),
{
    let mut value = None;
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        let v = strategy.generate(&mut g);
        value = Some(format!("{v:?}"));
        test(v);
    }));
    let outcome = match result {
        Ok(()) => Outcome::Pass,
        Err(payload) if payload.is::<Rejected>() => Outcome::Reject,
        Err(payload) => Outcome::Fail(payload_message(payload.as_ref())),
    };
    CaseRun {
        outcome,
        tape: g.into_recorded(),
        value,
    }
}

/// Shortlex order: shorter tapes first, then lexicographic.
fn shortlex_less(a: &[u64], b: &[u64]) -> bool {
    (a.len(), a) < (b.len(), b)
}

/// Shrinks a failing tape; returns the minimal tape found plus the number
/// of candidate executions spent.
fn shrink<S, F>(strategy: &S, test: &F, seed_tape: Vec<u64>, budget: u32) -> (Vec<u64>, u32)
where
    S: Strategy,
    S::Value: Debug,
    F: Fn(S::Value),
{
    let mut best = seed_tape;
    let mut iters = 0u32;
    // Tries one candidate; accepts it (true) iff it still fails and its
    // recording is strictly shortlex-smaller than the current best.
    let attempt = |cand: Vec<u64>, best: &mut Vec<u64>, iters: &mut u32| -> bool {
        *iters += 1;
        let run = run_case(strategy, test, Gen::replay(cand));
        if matches!(run.outcome, Outcome::Fail(_)) && shortlex_less(&run.tape, best) {
            *best = run.tape;
            true
        } else {
            false
        }
    };

    loop {
        let mut improved = false;

        // Pass 1: delete chunks of choices, largest first, end to start.
        for chunk in [8usize, 4, 2, 1] {
            let mut i = best.len();
            while i >= chunk {
                i -= chunk;
                if iters >= budget {
                    return (best, iters);
                }
                let mut cand = best.clone();
                cand.drain(i..i + chunk);
                improved |= attempt(cand, &mut best, &mut iters);
            }
        }

        // Pass 2: minimize entries in place — zero, then binary search
        // down, then a bounded run of decrements (which walks modulo
        // encodings like collection lengths down one step at a time).
        let mut i = 0;
        while i < best.len() {
            if best[i] != 0 {
                if iters >= budget {
                    return (best, iters);
                }
                let mut cand = best.clone();
                cand[i] = 0;
                if attempt(cand, &mut best, &mut iters) {
                    improved = true;
                } else {
                    // Lowest still-failing value in (0, best[i]) if the
                    // failure is monotone in this entry. Accepted tapes
                    // are recordings and may be shorter than the
                    // candidate, so re-check the index each step.
                    let (mut lo, mut hi) = (0u64, best[i]);
                    while hi - lo > 1 && iters < budget && i < best.len() {
                        let mid = lo + (hi - lo) / 2;
                        let mut cand = best.clone();
                        cand[i] = mid;
                        if attempt(cand, &mut best, &mut iters) {
                            improved = true;
                            hi = mid;
                        } else {
                            lo = mid;
                        }
                    }
                    for _ in 0..64 {
                        if i >= best.len() || best[i] == 0 || iters >= budget {
                            break;
                        }
                        let mut cand = best.clone();
                        cand[i] -= 1;
                        if attempt(cand, &mut best, &mut iters) {
                            improved = true;
                        } else {
                            break;
                        }
                    }
                }
            }
            i += 1;
        }

        if !improved || iters >= budget {
            return (best, iters);
        }
    }
}

/// Runs the property; `Err` carries the shrunk failure. The runner
/// serializes property bodies across threads and silences the default
/// panic printer while cases run, so shrinking does not spray hundreds of
/// panic backtraces onto stderr.
pub(crate) fn run<S, F>(cfg: &Config, strategy: &S, test: F) -> Result<(), RunError>
where
    S: Strategy,
    S::Value: Debug,
    F: Fn(S::Value),
{
    static HOOK_LOCK: Mutex<()> = Mutex::new(());
    let _guard = HOOK_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // `run_inner` never unwinds (case panics are caught inside it), so a
    // straight-line swap/restore is sound — and `set_hook` cannot be
    // called from a panicking thread anyway.
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = run_inner(cfg, strategy, &test);
    let _ = panic::take_hook();
    panic::set_hook(prev_hook);
    result
}

fn run_inner<S, F>(cfg: &Config, strategy: &S, test: &F) -> Result<(), RunError>
where
    S: Strategy,
    S::Value: Debug,
    F: Fn(S::Value),
{
    let mut case_seeds = envirotrack_sim::rng::SimRng::seed_from(cfg.seed).fork("testkit-seeds");
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u32;
    while passed < cfg.cases {
        let run = run_case(strategy, test, Gen::random(case_seeds.next_u64()));
        match run.outcome {
            Outcome::Pass => passed += 1,
            Outcome::Reject => {
                rejected += 1;
                if rejected > cfg.max_rejects {
                    return Err(RunError::TooManyRejects {
                        rejected,
                        cases: cfg.cases,
                    });
                }
            }
            Outcome::Fail(_) => {
                let (tape, shrink_iters) = shrink(strategy, test, run.tape, cfg.max_shrink_iters);
                // Final replay of the minimal tape for the value + message.
                let minimal = run_case(strategy, test, Gen::replay(tape));
                let message = match minimal.outcome {
                    Outcome::Fail(m) => m,
                    // Unreachable in practice: the tape was accepted as failing.
                    _ => "shrunk case no longer fails (unstable property?)".to_string(),
                };
                return Err(RunError::Failed(Failure {
                    value: minimal
                        .value
                        .unwrap_or_else(|| "<generation bailed>".to_string()),
                    message,
                    case_index: index,
                    shrink_iters,
                }));
            }
        }
        index += 1;
    }
    Ok(())
}

/// Checks a property: generates `cfg.cases` passing values of `strategy`,
/// panicking with the shrunk minimal counterexample if any case fails.
///
/// This is what the [`prop_test!`] macro expands to; call it directly for
/// one-off checks.
///
/// [`prop_test!`]: crate::prop_test
#[track_caller]
pub fn check<S, F>(cfg: &Config, strategy: &S, test: F)
where
    S: Strategy,
    S::Value: Debug,
    F: Fn(S::Value),
{
    match run(cfg, strategy, test) {
        Ok(()) => {}
        Err(RunError::Failed(f)) => panic!(
            "property failed (case {idx}, shrunk over {iters} candidate(s))\n\
             minimal failing input: {value}\n\
             {msg}\n\
             reproduce with TESTKIT_SEED={seed}",
            idx = f.case_index,
            iters = f.shrink_iters,
            value = f.value,
            msg = f.message,
            seed = cfg.seed,
        ),
        Err(RunError::TooManyRejects { rejected, cases }) => panic!(
            "testkit: {rejected} rejected cases before reaching {cases} passes — \
             loosen the filters or assumptions"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{any, prop};
    use std::cell::RefCell;

    fn quiet_cfg() -> Config {
        Config {
            cases: 64,
            seed: 42,
            max_rejects: 4096,
            max_shrink_iters: 1024,
        }
    }

    #[test]
    fn passing_properties_pass() {
        check(&quiet_cfg(), &(0u32..100), |v| assert!(v < 100));
    }

    #[test]
    fn rejection_excess_is_reported() {
        let cfg = Config {
            max_rejects: 10,
            ..quiet_cfg()
        };
        match run(&cfg, &(0u32..100), |_| reject()) {
            Err(RunError::TooManyRejects { rejected, cases }) => {
                assert_eq!(rejected, 11);
                assert_eq!(cases, 64);
            }
            _ => panic!("expected a rejection-overflow error"),
        }
    }

    #[test]
    fn shrinking_minimizes_an_intentionally_failing_vec_property() {
        // Scratch property: "every generated vec has fewer than 5
        // elements" — false for the strategy below. The shrinker must
        // walk any failing case down to the minimal counterexample:
        // exactly five zero elements.
        let minimal: RefCell<Vec<u8>> = RefCell::new(Vec::new());
        let failure = run(
            &quiet_cfg(),
            &prop::collection::vec(any::<u8>(), 0..100),
            |v| {
                if v.len() >= 5 {
                    *minimal.borrow_mut() = v;
                    panic!("vec too long");
                }
            },
        )
        .expect_err("property must fail")
        .into_failure();
        assert_eq!(*minimal.borrow(), vec![0u8; 5], "not shrunk to minimal");
        assert!(
            failure.value.contains("[0, 0, 0, 0, 0]"),
            "report: {}",
            failure.value
        );
        assert_eq!(failure.message, "vec too long");
    }

    #[test]
    fn shrinking_minimizes_a_scalar_bound_failure() {
        let minimal = RefCell::new(0u64);
        let failure = run(&quiet_cfg(), &(0u64..1_000_000), |v| {
            if v >= 1000 {
                *minimal.borrow_mut() = v;
                panic!("too big");
            }
        })
        .expect_err("property must fail")
        .into_failure();
        assert_eq!(
            *minimal.borrow(),
            1000,
            "binary search must find the boundary"
        );
        assert!(failure.value.contains("1000"));
    }

    #[test]
    fn failures_reproduce_deterministically_for_a_fixed_seed() {
        // Fails for roughly half of all cases, so 64 cases always hit it.
        let failing = |v: (u32, u32)| assert!(v.0 + v.1 < 1000, "sum too big");
        let a = run(&quiet_cfg(), &((0u32..1000, 0u32..1000),), |(v,)| {
            failing(v)
        })
        .expect_err("fails")
        .into_failure();
        let b = run(&quiet_cfg(), &((0u32..1000, 0u32..1000),), |(v,)| {
            failing(v)
        })
        .expect_err("fails")
        .into_failure();
        assert_eq!(a.value, b.value);
        assert_eq!(a.case_index, b.case_index);
    }

    #[test]
    fn config_with_cases_overrides_only_the_case_count() {
        let c = Config::with_cases(7);
        assert_eq!(c.cases, 7);
        assert!(c.max_shrink_iters > 0);
    }
}
