//! The `prop_test!` macro family: a drop-in for `proptest!` suites.
//!
//! ```
//! use testkit::prelude::*;
//!
//! prop_test! {
//!     #![config(Config::with_cases(64))]
//!
//!     // In a test module this would carry `#[test]`; attributes pass
//!     // through unchanged.
//!     fn addition_commutes(a in 0u32..1000, b: u32) {
//!         prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
//!     }
//! }
//! # addition_commutes();
//! ```
//!
//! Parameters take either proptest form: `name in strategy_expr` or
//! `name: Type` (shorthand for `name in any::<Type>()`). The optional
//! `#![config(...)]` header replaces proptest's
//! `#![proptest_config(...)]` and applies to every test in the block.

/// Declares property tests; see the [module docs](crate::macros).
#[macro_export]
macro_rules! prop_test {
    (#![config($cfg:expr)] $($rest:tt)*) => {
        $crate::__prop_test_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__prop_test_items! { cfg = ($crate::Config::default()); $($rest)* }
    };
}

/// Implementation detail of [`prop_test!`]: splits the block into test
/// functions.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_test_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__prop_test_body! {
                cfg = ($cfg);
                params = [$($params)*];
                pats = ();
                strats = ();
                body = $body
            }
        }
        $crate::__prop_test_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Implementation detail of [`prop_test!`]: munches the parameter list
/// into a tuple strategy and a tuple pattern, then invokes the runner.
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_test_body {
    // `name: Type` — shorthand for `name in any::<Type>()`.
    (cfg = ($cfg:expr);
     params = [$p:ident : $t:ty, $($rest:tt)*];
     pats = ($($pats:tt)*); strats = ($($strats:tt)*); body = $body:block) => {
        $crate::__prop_test_body! {
            cfg = ($cfg);
            params = [$($rest)*];
            pats = ($($pats)* $p,);
            strats = ($($strats)* ($crate::any::<$t>()),);
            body = $body
        }
    };
    (cfg = ($cfg:expr);
     params = [$p:ident : $t:ty];
     pats = ($($pats:tt)*); strats = ($($strats:tt)*); body = $body:block) => {
        $crate::__prop_test_body! {
            cfg = ($cfg);
            params = [];
            pats = ($($pats)* $p,);
            strats = ($($strats)* ($crate::any::<$t>()),);
            body = $body
        }
    };
    // `pattern in strategy`.
    (cfg = ($cfg:expr);
     params = [$p:pat_param in $s:expr, $($rest:tt)*];
     pats = ($($pats:tt)*); strats = ($($strats:tt)*); body = $body:block) => {
        $crate::__prop_test_body! {
            cfg = ($cfg);
            params = [$($rest)*];
            pats = ($($pats)* $p,);
            strats = ($($strats)* ($s),);
            body = $body
        }
    };
    (cfg = ($cfg:expr);
     params = [$p:pat_param in $s:expr];
     pats = ($($pats:tt)*); strats = ($($strats:tt)*); body = $body:block) => {
        $crate::__prop_test_body! {
            cfg = ($cfg);
            params = [];
            pats = ($($pats)* $p,);
            strats = ($($strats)* ($s),);
            body = $body
        }
    };
    // All parameters consumed: run.
    (cfg = ($cfg:expr);
     params = [];
     pats = ($($pats:tt)*); strats = ($($strats:tt)*); body = $body:block) => {{
        let __cfg: $crate::Config = $cfg;
        let __strategy = ($($strats)*);
        $crate::check(&__cfg, &__strategy, |($($pats)*)| $body);
    }};
}

/// Asserts a condition inside a property, with an optional format
/// message. Failing aborts (and shrinks) the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts two expressions are equal, reporting both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            panic!(
                "property assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r,
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            panic!(
                "{}\n  left: {:?}\n right: {:?}",
                format_args!($($fmt)+), __l, __r,
            );
        }
    }};
}

/// Asserts two expressions are unequal, reporting the shared value.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            panic!(
                "property assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), __l,
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            panic!("{}\n  both: {:?}", format_args!($($fmt)+), __l);
        }
    }};
}

/// Discards the current case (without failing) unless the condition
/// holds. Discarded cases do not count toward the configured case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            $crate::reject();
        }
    };
}

/// Uniform choice between strategies producing the same value type. List
/// the simplest arm first: shrinking gravitates toward it.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}
