//! The choice tape: the substrate that makes every generated value a pure
//! function of a sequence of `u64` draws.
//!
//! A [`Gen`] hands strategies their randomness one `u64` at a time and
//! records every draw. Replaying a recorded tape (possibly mutated by the
//! shrinker) regenerates a value without any strategy-specific shrink
//! logic: deleting, zeroing, or lowering tape entries systematically
//! yields "smaller" values because every strategy maps the draw `0` to its
//! minimal output. Draws past the end of a replayed tape read as `0`,
//! which pads truncated tapes with minimal choices.

use envirotrack_sim::rng::SimRng;

/// Hard cap on draws per generated case: a runaway recursive strategy hits
/// this and the case is rejected rather than looping forever.
const MAX_DRAWS: usize = 100_000;

/// The draw source for one generated case.
pub struct Gen {
    rng: Option<SimRng>,
    tape: Vec<u64>,
    pos: usize,
    recorded: Vec<u64>,
}

impl Gen {
    /// A generator drawing fresh randomness from the deterministic
    /// simulation RNG seeded with `case_seed`.
    #[must_use]
    pub fn random(case_seed: u64) -> Self {
        Gen {
            rng: Some(SimRng::seed_from(case_seed).fork("testkit-case")),
            tape: Vec::new(),
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// A generator replaying a recorded (possibly shrunk) tape. Draws past
    /// the end of the tape read as `0`.
    #[must_use]
    pub fn replay(tape: Vec<u64>) -> Self {
        Gen {
            rng: None,
            tape,
            pos: 0,
            recorded: Vec::new(),
        }
    }

    /// Draws the next raw `u64` choice.
    pub fn draw(&mut self) -> u64 {
        if self.recorded.len() >= MAX_DRAWS {
            crate::reject();
        }
        let v = if self.pos < self.tape.len() {
            self.tape[self.pos]
        } else if let Some(rng) = &mut self.rng {
            rng.next_u64()
        } else {
            0
        };
        self.pos += 1;
        self.recorded.push(v);
        v
    }

    /// Draws a value in `0..n` (`n` must be nonzero). A draw of `0` maps
    /// to `0`, keeping the minimal tape the minimal value.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "Gen::below(0)");
        self.draw() % n
    }

    /// Draws a fraction in `[0, 1)` with 53 bits of precision; the draw
    /// `0` maps to `0.0`.
    pub fn fraction(&mut self) -> f64 {
        (self.draw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a boolean that is `false` on the minimal draw.
    pub fn bool(&mut self) -> bool {
        self.draw() & 1 == 1
    }

    /// The choices consumed so far, in draw order.
    #[must_use]
    pub fn recorded(&self) -> &[u64] {
        &self.recorded
    }

    /// Consumes the generator, returning the recorded tape.
    #[must_use]
    pub fn into_recorded(self) -> Vec<u64> {
        self.recorded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaying_a_recording_reproduces_the_draws() {
        let mut a = Gen::random(7);
        let draws: Vec<u64> = (0..10).map(|_| a.draw()).collect();
        let mut b = Gen::replay(a.into_recorded());
        let replayed: Vec<u64> = (0..10).map(|_| b.draw()).collect();
        assert_eq!(draws, replayed);
    }

    #[test]
    fn exhausted_replay_pads_with_zero() {
        let mut g = Gen::replay(vec![41]);
        assert_eq!(g.draw(), 41);
        assert_eq!(g.draw(), 0);
        assert_eq!(g.draw(), 0);
        assert_eq!(g.recorded(), &[41, 0, 0]);
    }

    #[test]
    fn helpers_map_zero_draw_to_minimal_values() {
        let mut g = Gen::replay(vec![]);
        assert_eq!(g.below(100), 0);
        assert_eq!(g.fraction(), 0.0);
        assert!(!g.bool());
    }
}
