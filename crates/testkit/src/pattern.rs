//! String strategies from a small regex-like pattern language.
//!
//! A `&'static str` is itself a [`Strategy`] generating `String`s, exactly
//! as in `proptest` (`name in "[a-z]{1,12}"`). The supported subset is
//! what the workspace's suites use:
//!
//! * literal characters,
//! * character classes `[a-z0-9_]` with ranges and `\`-escapes,
//! * the `\PC` escape (any non-control character),
//! * counted repetition `{n}` / `{m,n}` on the preceding atom.
//!
//! Unsupported syntax panics at generation time with the offending
//! pattern, so a typo fails loudly rather than generating garbage.

use crate::strategy::Strategy;
use crate::tape::Gen;

/// One pattern atom plus its repetition range (inclusive).
struct Atom {
    set: CharSet,
    min: u32,
    max: u32,
}

enum CharSet {
    /// Inclusive char ranges; a singleton is `(c, c)`.
    Ranges(Vec<(char, char)>),
    /// `\PC`: any character outside Unicode category C (controls).
    NonControl,
}

impl CharSet {
    fn pick(&self, g: &mut Gen) -> char {
        match self {
            CharSet::Ranges(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(a, b)| u64::from(*b) - u64::from(*a) + 1)
                    .sum();
                let mut idx = g.below(total);
                for (a, b) in ranges {
                    let size = u64::from(*b) - u64::from(*a) + 1;
                    if idx < size {
                        return char::from_u32(*a as u32 + idx as u32).unwrap_or(*a);
                    }
                    idx -= size;
                }
                unreachable!("index within total")
            }
            CharSet::NonControl => {
                // Mostly printable ASCII; occasionally a BMP char clear of
                // the surrogate range, skipped if it lands on a control.
                if g.below(8) < 7 {
                    char::from_u32(0x20 + g.below(0x5F) as u32).unwrap_or(' ')
                } else {
                    let c = char::from_u32(0xA0 + g.below(0xD7FF - 0xA0) as u32).unwrap_or('¡');
                    if c.is_control() {
                        ' '
                    } else {
                        c
                    }
                }
            }
        }
    }
}

fn parse(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => parse_class(&mut chars, pattern),
            '\\' => match chars.next() {
                Some('P') => {
                    if chars.next() != Some('C') {
                        bad(pattern, "only the \\PC category escape is supported");
                    }
                    CharSet::NonControl
                }
                Some(esc) => CharSet::Ranges(vec![(esc, esc)]),
                None => bad(pattern, "dangling backslash"),
            },
            '.' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                bad(pattern, "unsupported regex operator")
            }
            lit => CharSet::Ranges(vec![(lit, lit)]),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            parse_counts(&mut chars, pattern)
        } else {
            (1, 1)
        };
        atoms.push(Atom { set, min, max });
    }
    atoms
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> CharSet {
    let mut ranges: Vec<(char, char)> = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = match chars.next() {
            Some(c) => c,
            None => bad(pattern, "unterminated character class"),
        };
        match c {
            ']' => {
                if let Some(p) = pending {
                    ranges.push((p, p));
                }
                if ranges.is_empty() {
                    bad(pattern, "empty character class");
                }
                return CharSet::Ranges(ranges);
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().expect("checked");
                let hi = match chars.next() {
                    Some('\\') => chars
                        .next()
                        .unwrap_or_else(|| bad(pattern, "dangling backslash")),
                    Some(h) => h,
                    None => bad(pattern, "unterminated character class"),
                };
                if hi < lo {
                    bad(pattern, "inverted class range");
                }
                ranges.push((lo, hi));
            }
            '\\' => {
                if let Some(p) = pending.replace(match chars.next() {
                    Some(e) => e,
                    None => bad(pattern, "dangling backslash"),
                }) {
                    ranges.push((p, p));
                }
            }
            other => {
                if let Some(p) = pending.replace(other) {
                    ranges.push((p, p));
                }
            }
        }
    }
}

fn parse_counts(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> (u32, u32) {
    let mut min = 0u32;
    let mut max: Option<u32> = None;
    let mut saw_comma = false;
    loop {
        match chars.next() {
            Some(d @ '0'..='9') => {
                let digit = d as u32 - '0' as u32;
                if saw_comma {
                    max = Some(max.unwrap_or(0) * 10 + digit);
                } else {
                    min = min * 10 + digit;
                }
            }
            Some(',') => saw_comma = true,
            Some('}') => {
                let max = if saw_comma { max.unwrap_or(min) } else { min };
                if max < min {
                    bad(pattern, "inverted repetition count");
                }
                return (min, max);
            }
            _ => bad(pattern, "malformed repetition count"),
        }
    }
}

fn bad(pattern: &str, why: &str) -> ! {
    panic!("testkit string pattern {pattern:?}: {why}");
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, g: &mut Gen) -> String {
        let mut out = String::new();
        for atom in parse(self) {
            let count = atom.min + g.below(u64::from(atom.max - atom.min) + 1) as u32;
            for _ in 0..count {
                out.push(atom.set.pick(g));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_many(pattern: &'static str, n: u32) -> Vec<String> {
        let mut g = Gen::random(17);
        (0..n).map(|_| pattern.generate(&mut g)).collect()
    }

    #[test]
    fn identifier_pattern_matches_its_own_grammar() {
        for s in gen_many("[a-z][a-z0-9_]{0,8}", 300) {
            assert!((1..=9).contains(&s.len()), "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn class_with_escaped_brackets_excludes_quote_and_backslash() {
        // Printable ASCII minus `"` and `\` — the lang suite's string set.
        for s in gen_many("[ -!#-\\[\\]-~]{0,12}", 300) {
            assert!(s.len() <= 12);
            for c in s.chars() {
                assert!((' '..='~').contains(&c), "outside printable: {c:?}");
                assert!(c != '"' && c != '\\', "excluded char generated: {c:?}");
            }
        }
    }

    #[test]
    fn non_control_escape_generates_no_controls() {
        for s in gen_many("\\PC{0,200}", 50) {
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
        }
    }

    #[test]
    fn counted_repetition_is_exact_without_a_comma() {
        for s in gen_many("[a-z]{12}", 50) {
            assert_eq!(s.len(), 12);
        }
    }

    #[test]
    fn zero_tape_yields_the_shortest_smallest_string() {
        let mut g = Gen::replay(vec![]);
        assert_eq!("[a-z]{1,12}".generate(&mut g), "a");
        let mut g = Gen::replay(vec![]);
        assert_eq!("[a-z]{0,8}".generate(&mut g), "");
    }

    #[test]
    #[should_panic(expected = "unsupported regex operator")]
    fn unsupported_syntax_panics_loudly() {
        let mut g = Gen::replay(vec![]);
        let _ = "a+b".generate(&mut g);
    }
}
