//! Seeded, forkable randomness for reproducible simulations.
//!
//! Every stochastic decision in the simulator (message loss, deployment
//! jitter, backoff) draws from a [`SimRng`]. A run is therefore a pure
//! function of its configuration plus one `u64` seed.
//!
//! [`SimRng::fork`] derives an independent child stream from a label, so
//! subsystems can be given their own streams without consuming numbers from
//! each other — adding a draw in one module does not perturb another.
//!
//! ## Algorithm and stream stability
//!
//! The generator is an in-tree **xoshiro256++** (Blackman & Vigna) whose
//! 256-bit state is expanded from the `u64` seed by **splitmix64** — the
//! reference seeding procedure. Both algorithms are pure integer arithmetic
//! with no platform- or version-dependent behaviour, so identical seeds
//! produce identical streams on every build of this repository.
//!
//! That guarantee is load-bearing: every experiment in EXPERIMENTS.md is
//! reported against a seed. The stream is therefore *pinned* by a
//! regression test ([`tests::seed_42_stream_is_pinned`]) holding the first
//! eight outputs of seed 42 — any future change to the algorithm (or an
//! accidental reordering of draws) fails loudly instead of silently
//! shifting every experiment.
//!
//! ```
//! use envirotrack_sim::rng::SimRng;
//!
//! let mut a = SimRng::seed_from(42);
//! let mut b = SimRng::seed_from(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//!
//! let mut radio = a.fork("radio");
//! let mut world = a.fork("world");
//! assert_ne!(radio.next_u64(), world.next_u64()); // independent streams
//! ```

/// The splitmix64 step: advances `state` and returns the next output.
///
/// Used to expand a 64-bit seed into xoshiro's 256-bit state, and useful on
/// its own wherever a cheap stateless mix of a `u64` is needed.
#[inline]
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic random number generator for simulation use.
///
/// Wraps a fixed algorithm (xoshiro256++ seeded via splitmix64) so that
/// every build of this repository produces identical streams for identical
/// seeds. See the module docs for the stream-stability guarantee.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { state, seed }
    }

    /// The seed this generator was created from (forks derive new seeds).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator from a string label.
    ///
    /// The child's stream depends on this generator's *seed* and the label
    /// only — not on how many numbers have been drawn — so forking is
    /// insensitive to call ordering.
    #[must_use]
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the parent seed. Stable across
        // platforms and Rust versions (unlike DefaultHasher).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.rotate_left(17);
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SimRng::seed_from(h)
    }

    /// Derives an independent child generator from an integer index, e.g. a
    /// node id or a run number in a multi-run experiment.
    #[must_use]
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        let base = self.fork(label);
        SimRng::seed_from(base.seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value (the xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit value (the upper half of a 64-bit draw, which is the
    /// better-mixed half for xoshiro-family generators).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `[0, 1)`, using the top 53 bits of a draw.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range [{lo}, {hi})"
        );
        if lo == hi {
            return lo;
        }
        let x = lo + self.uniform() * (hi - lo);
        // Floating-point rounding can push x onto hi when hi - lo is tiny
        // relative to the magnitudes involved; keep the interval half-open.
        if x >= hi {
            lo
        } else {
            x
        }
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// Uses a plain modulo reduction: the bias is at most `n / 2^64`, far
    /// below anything a simulation or test could resolve, and keeping the
    /// draw count fixed at one per call keeps streams easy to reason about.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.next_u64() % n
    }

    /// A Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// A standard-normal sample, for sensor noise models.
    pub fn gaussian(&mut self) -> f64 {
        // Marsaglia polar method avoids trig and is numerically tame.
        loop {
            let u = self.uniform_range(-1.0, 1.0);
            let v = self.uniform_range(-1.0, 1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Picks a uniformly random element of a slice, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.below(items.len() as u64) as usize;
            Some(&items[i])
        }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The first eight outputs of seed 42 are pinned. A future swap of the
    /// RNG algorithm (or an accidental change to seeding or draw order)
    /// must update this vector *deliberately* — and with it, re-baseline
    /// every seed-reported experiment in EXPERIMENTS.md — rather than
    /// silently changing every experiment's stream.
    #[test]
    fn seed_42_stream_is_pinned() {
        let mut rng = SimRng::seed_from(42);
        let observed: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let pinned: [u64; 8] = [
            0xd076_4d4f_4476_689f,
            0x519e_4174_576f_3791,
            0xfbe0_7cfb_0c24_ed8c,
            0xb37d_9f60_0cd8_35b8,
            0xcb23_1c38_7484_6a73,
            0x968d_9f00_4e50_de7d,
            0x2017_18ff_221a_3556,
            0x9ae9_4e07_0ed8_cb46,
        ];
        assert_eq!(
            observed, pinned,
            "the seed-42 stream drifted — see module docs"
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_label_dependent_and_draw_independent() {
        let parent = SimRng::seed_from(7);
        let mut f1 = parent.fork("net");
        let mut f2 = parent.fork("world");
        assert_ne!(f1.next_u64(), f2.next_u64());

        // Forking does not depend on parent draw position.
        let mut consumed = SimRng::seed_from(7);
        let _ = consumed.next_u64();
        let mut f1_again = consumed.fork("net");
        let mut f1_fresh = SimRng::seed_from(7).fork("net");
        assert_eq!(f1_again.next_u64(), f1_fresh.next_u64());
    }

    #[test]
    fn fork_indexed_varies_by_index() {
        let parent = SimRng::seed_from(7);
        let mut a = parent.fork_indexed("run", 0);
        let mut b = parent.fork_indexed("run", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_edges_are_exact() {
        let mut rng = SimRng::seed_from(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-3.0));
        assert!(rng.chance(7.0));
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut rng = SimRng::seed_from(11);
        let hits = (0..20_000).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} too far from 0.3");
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let x = rng.uniform_range(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
        assert_eq!(rng.uniform_range(4.0, 4.0), 4.0);
    }

    #[test]
    fn uniform_is_half_open_and_well_spread() {
        let mut rng = SimRng::seed_from(17);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments_look_normal() {
        let mut rng = SimRng::seed_from(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = SimRng::seed_from(23);
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((4_500..=5_500).contains(&c), "bucket {i} got {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = SimRng::seed_from(2);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }
}
