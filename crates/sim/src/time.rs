//! Virtual time for the discrete-event simulator.
//!
//! All of EnviroTrack's simulated protocols operate on a virtual clock with
//! microsecond resolution. Two newtypes keep instants and spans apart at the
//! type level ([C-NEWTYPE]):
//!
//! * [`Timestamp`] — an absolute instant, measured from the start of the
//!   simulation.
//! * [`SimDuration`] — a non-negative span between two instants.
//!
//! Microsecond ticks stored in a `u64` give ~584,000 years of simulated time,
//! far beyond any experiment in this repository, while keeping ordering exact
//! (no floating-point drift in the event queue).
//!
//! ```
//! use envirotrack_sim::time::{SimDuration, Timestamp};
//!
//! let start = Timestamp::ZERO;
//! let later = start + SimDuration::from_secs_f64(1.5);
//! assert_eq!(later.as_micros(), 1_500_000);
//! assert_eq!(later - start, SimDuration::from_millis(1500));
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant of virtual time, counted in microseconds from the
/// beginning of the simulation.
///
/// `Timestamp` is `Copy` and totally ordered; the event queue relies on this
/// ordering being exact, which is why the representation is integral.
///
/// ```
/// use envirotrack_sim::time::Timestamp;
/// assert!(Timestamp::from_secs(2) > Timestamp::from_millis(1999));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

/// A non-negative span of virtual time, counted in microseconds.
///
/// ```
/// use envirotrack_sim::time::SimDuration;
/// let hb = SimDuration::from_millis(250);
/// assert_eq!(hb * 2, SimDuration::from_millis(500));
/// assert_eq!(hb.as_secs_f64(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl Timestamp {
    /// The origin of virtual time.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from raw microsecond ticks.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp(micros)
    }

    /// Creates a timestamp from whole milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Timestamp(millis * 1_000)
    }

    /// Creates a timestamp from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000_000)
    }

    /// Raw microsecond ticks since the simulation origin.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in (possibly fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`, or [`SimDuration::ZERO`] when
    /// `earlier` is in the future (saturating, never panics).
    #[must_use]
    pub fn saturating_since(self, earlier: Timestamp) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: Timestamp) -> Timestamp {
        Timestamp(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: Timestamp) -> Timestamp {
        Timestamp(self.0.min(other.0))
    }

    /// Adds a duration, saturating at [`Timestamp::MAX`] instead of wrapping.
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span; used as an "infinite" timeout sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw microsecond ticks.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from whole milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let micros = secs * 1e6;
        assert!(micros <= u64::MAX as f64, "duration out of range: {secs}s");
        SimDuration(micros.round() as u64)
    }

    /// Raw microsecond ticks.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This span expressed in (possibly fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether the span is exactly zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a fractional factor, rounding to the nearest microsecond.
    ///
    /// Useful for deriving protocol timers such as the paper's receive timer
    /// (2.1 × heartbeat period).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Subtracts, saturating at zero instead of panicking.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: SimDuration) -> Timestamp {
        Timestamp(
            self.0
                .checked_add(rhs.0)
                .expect("timestamp overflow: instant + duration exceeds u64 microseconds"),
        )
    }
}

impl AddAssign<SimDuration> for Timestamp {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, rhs: SimDuration) -> Timestamp {
        Timestamp(
            self.0
                .checked_sub(rhs.0)
                .expect("timestamp underflow: duration reaches before the simulation origin"),
        )
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = SimDuration;
    fn sub(self, rhs: Timestamp) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("timestamp subtraction: left operand must not precede right operand"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration underflow: result would be negative"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    /// Dividing two durations yields a dimensionless ratio.
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == u64::MAX {
            return write!(f, "inf");
        }
        if self.0.is_multiple_of(1_000_000) {
            write!(f, "{}s", self.0 / 1_000_000)
        } else if self.0.is_multiple_of(1_000) {
            write!(f, "{}ms", self.0 / 1_000)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl From<SimDuration> for f64 {
    fn from(d: SimDuration) -> f64 {
        d.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Timestamp::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(Timestamp::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_micros(), 250_000);
    }

    #[test]
    fn arithmetic_relates_instants_and_spans() {
        let a = Timestamp::from_secs(1);
        let b = a + SimDuration::from_millis(500);
        assert_eq!(b - a, SimDuration::from_millis(500));
        assert_eq!(b - SimDuration::from_millis(500), a);
    }

    #[test]
    fn saturating_since_clamps_future_origins() {
        let early = Timestamp::from_secs(1);
        let late = Timestamp::from_secs(2);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_derives_protocol_timers() {
        let hb = SimDuration::from_millis(1000);
        assert_eq!(hb.mul_f64(2.1), SimDuration::from_millis(2100));
        assert_eq!(hb.mul_f64(4.2), SimDuration::from_millis(4200));
    }

    #[test]
    fn duration_ratio_is_dimensionless() {
        let a = SimDuration::from_secs(3);
        let b = SimDuration::from_secs(2);
        assert!((a / b - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_picks_a_readable_unit() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250ms");
        assert_eq!(SimDuration::from_micros(17).to_string(), "17us");
        assert_eq!(SimDuration::MAX.to_string(), "inf");
        assert_eq!(Timestamp::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    #[should_panic(expected = "must not precede")]
    fn instant_subtraction_checks_order() {
        let _ = Timestamp::from_secs(1) - Timestamp::from_secs(2);
    }

    #[test]
    fn saturating_helpers_never_panic() {
        assert_eq!(
            Timestamp::MAX.saturating_add(SimDuration::from_secs(1)),
            Timestamp::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }
}
