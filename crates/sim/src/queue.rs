//! A deterministic future-event list.
//!
//! [`EventQueue`] orders items primarily by their firing [`Timestamp`]; items
//! scheduled for the *same* instant are delivered in insertion order. That
//! tie-break is what makes whole-simulation runs reproducible: a plain binary
//! heap over timestamps alone would pop equal-time events in an arbitrary
//! order that depends on heap internals.
//!
//! ```
//! use envirotrack_sim::queue::EventQueue;
//! use envirotrack_sim::time::Timestamp;
//!
//! let mut q = EventQueue::new();
//! q.push(Timestamp::from_secs(2), "late");
//! q.push(Timestamp::from_secs(1), "early");
//! q.push(Timestamp::from_secs(1), "early-second");
//! assert_eq!(q.pop(), Some((Timestamp::from_secs(1), "early")));
//! assert_eq!(q.pop(), Some((Timestamp::from_secs(1), "early-second")));
//! assert_eq!(q.pop(), Some((Timestamp::from_secs(2), "late")));
//! assert_eq!(q.pop(), None);
//! ```
//!
//! ## Storage: slot slab + free-list
//!
//! Items live in a *slab* of slots; the heap orders lightweight
//! `(time, seq, slot, generation)` entries that point into it. Popped and
//! cancelled slots go onto a free-list and are reused by later pushes, so a
//! steady-state simulation recycles a bounded working set of slots instead
//! of growing (or repeatedly reallocating) per event. The indirection is
//! also what makes O(log n) cancellation possible:
//!
//! * [`EventQueue::push_keyed`] returns an [`EventKey`];
//! * [`EventQueue::cancel`] retires that key's item immediately (the stale
//!   heap entry is skipped lazily when it surfaces);
//! * generations disambiguate a reused slot from the key of its previous
//!   occupant, so a stale key can never cancel somebody else's event.
//!
//! Pooling can be disabled ([`EventQueue::with_pooling`]) for A/B testing —
//! the property suite asserts pop order and cancellation semantics are
//! identical either way.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Timestamp;

/// A handle to one scheduled event, returned by [`EventQueue::push_keyed`].
///
/// Keys are one-shot: once the event pops or is cancelled, the key goes
/// stale and [`EventQueue::cancel`] on it is a no-op — even if the
/// underlying slot has been reused by a later push.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventKey {
    slot: u32,
    generation: u32,
}

/// One heap entry: ordering metadata plus a pointer into the slab. Ordered
/// so that the binary heap (a max-heap) pops the earliest time first, then
/// the lowest sequence number.
struct Entry {
    at: Timestamp,
    seq: u64,
    slot: u32,
    generation: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we want the earliest entry.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One slab slot. `generation` advances every time the occupant leaves
/// (pop or cancel), invalidating outstanding keys and stale heap entries.
struct Slot<E> {
    item: Option<E>,
    generation: u32,
}

/// A priority queue of timed events with deterministic FIFO ordering among
/// events scheduled for the same instant, slab-backed with a slot
/// free-list (see the [module docs](self)).
///
/// The queue never reorders same-time events, so a simulation driven from it
/// is a pure function of its inputs and RNG seed.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    pooling: bool,
    next_seq: u64,
    live: usize,
    reused_slots: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with slot pooling enabled.
    #[must_use]
    pub fn new() -> Self {
        Self::with_pooling(true)
    }

    /// Creates an empty queue, choosing whether retired slots are recycled
    /// (`true`, the default) or abandoned (`false`; every push allocates a
    /// fresh slot). Observable behaviour is identical either way — the
    /// property suite pins that.
    #[must_use]
    pub fn with_pooling(pooling: bool) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            pooling,
            next_seq: 0,
            live: 0,
            reused_slots: 0,
        }
    }

    /// Schedules `item` to fire at instant `at`.
    pub fn push(&mut self, at: Timestamp, item: E) {
        let _ = self.push_keyed(at, item);
    }

    /// Schedules `item` to fire at instant `at`, returning a key that can
    /// cancel it before it pops.
    pub fn push_keyed(&mut self, at: Timestamp, item: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                self.reused_slots += 1;
                self.slots[i as usize].item = Some(item);
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("slab under u32::MAX slots");
                self.slots.push(Slot {
                    item: Some(item),
                    generation: 0,
                });
                i
            }
        };
        let generation = self.slots[slot as usize].generation;
        self.heap.push(Entry {
            at,
            seq,
            slot,
            generation,
        });
        self.live += 1;
        EventKey { slot, generation }
    }

    /// Cancels a pending event, returning its item, or `None` when the key
    /// is stale (already popped, already cancelled, or from a cleared
    /// queue). The heap entry is discarded lazily when it surfaces.
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        let slot = self.slots.get_mut(key.slot as usize)?;
        if slot.generation != key.generation {
            return None;
        }
        let item = slot.item.take()?;
        self.retire(key.slot);
        self.live -= 1;
        Some(item)
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        loop {
            let entry = self.heap.pop()?;
            let slot = &mut self.slots[entry.slot as usize];
            if slot.generation != entry.generation {
                // Cancelled (or cleared) behind this entry's back: skip.
                continue;
            }
            let item = slot
                .item
                .take()
                .expect("live generation implies an occupied slot");
            self.retire(entry.slot);
            self.live -= 1;
            return Some((entry.at, item));
        }
    }

    /// Advances a vacated slot's generation and (under pooling) recycles it.
    fn retire(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.generation = s.generation.wrapping_add(1);
        if self.pooling {
            self.free.push(slot);
        }
    }

    /// The firing time of the earliest pending event, if any. Discards any
    /// cancelled entries sitting on top of the heap, so the answer is exact.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<Timestamp> {
        loop {
            let entry = self.heap.peek()?;
            if self.slots[entry.slot as usize].generation == entry.generation {
                return Some(entry.at);
            }
            let _ = self.heap.pop();
        }
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slab slots ever allocated — the high-water mark of
    /// concurrently pending events when pooling is on.
    #[must_use]
    pub fn allocated_slots(&self) -> usize {
        self.slots.len()
    }

    /// How many pushes were satisfied from the free-list instead of a
    /// fresh slot allocation.
    #[must_use]
    pub fn reused_slots(&self) -> u64 {
        self.reused_slots
    }

    /// Drops all pending events. Outstanding keys go stale (their slots'
    /// generations advance, so they can never match a later occupant); the
    /// slab itself is retained for reuse.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.free.clear();
        for (i, s) in self.slots.iter_mut().enumerate() {
            if s.item.take().is_some() {
                s.generation = s.generation.wrapping_add(1);
            }
            if self.pooling {
                self.free.push(u32::try_from(i).expect("slab under u32::MAX slots"));
            }
        }
        self.live = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.live)
            .field("slots", &self.slots.len())
            .field("pooling", &self.pooling)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Timestamp::from_secs(3), 'c');
        q.push(Timestamp::from_secs(1), 'a');
        q.push(Timestamp::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = Timestamp::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_pushes_preserve_fifo_per_instant() {
        let mut q = EventQueue::new();
        let t1 = Timestamp::from_secs(1);
        let t2 = Timestamp::from_secs(2);
        q.push(t2, "t2-first");
        q.push(t1, "t1-first");
        q.push(t2, "t2-second");
        q.push(t1, "t1-second");
        assert_eq!(q.pop().unwrap().1, "t1-first");
        assert_eq!(q.pop().unwrap().1, "t1-second");
        assert_eq!(q.pop().unwrap().1, "t2-first");
        assert_eq!(q.pop().unwrap().1, "t2-second");
    }

    #[test]
    fn peek_and_len_reflect_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Timestamp::from_secs(5), ());
        q.push(Timestamp::from_secs(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Timestamp::from_secs(4)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_removes_the_event_and_returns_its_item() {
        let mut q = EventQueue::new();
        let a = q.push_keyed(Timestamp::from_secs(1), "a");
        let _b = q.push_keyed(Timestamp::from_secs(2), "b");
        assert_eq!(q.len(), 2);
        assert_eq!(q.cancel(a), Some("a"));
        assert_eq!(q.len(), 1);
        // Cancellation is visible to peek immediately.
        assert_eq!(q.peek_time(), Some(Timestamp::from_secs(2)));
        assert_eq!(q.pop(), Some((Timestamp::from_secs(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn stale_keys_are_noops() {
        let mut q = EventQueue::new();
        let a = q.push_keyed(Timestamp::from_secs(1), 1);
        assert_eq!(q.cancel(a), Some(1));
        assert_eq!(q.cancel(a), None, "double cancel");
        // The slot is reused by the next push; the old key must not be able
        // to cancel the new occupant.
        let b = q.push_keyed(Timestamp::from_secs(2), 2);
        assert_eq!(q.cancel(a), None, "stale key on a reused slot");
        assert_eq!(q.len(), 1);
        assert_eq!(q.cancel(b), Some(2));
        // A popped event's key is stale too.
        let c = q.push_keyed(Timestamp::from_secs(3), 3);
        assert_eq!(q.pop(), Some((Timestamp::from_secs(3), 3)));
        assert_eq!(q.cancel(c), None, "key of a popped event");
    }

    #[test]
    fn pooling_recycles_slots_in_steady_state() {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.push(Timestamp::from_micros(i), i);
            let _ = q.pop();
        }
        assert!(
            q.allocated_slots() <= 2,
            "steady-state push/pop must recycle, got {} slots",
            q.allocated_slots()
        );
        assert!(q.reused_slots() >= 999);

        let mut churn = EventQueue::<u64>::with_pooling(false);
        for i in 0..100u64 {
            churn.push(Timestamp::from_micros(i), i);
            let _ = churn.pop();
        }
        assert_eq!(churn.allocated_slots(), 100, "pooling off never recycles");
        assert_eq!(churn.reused_slots(), 0);
    }

    #[test]
    fn keys_from_before_clear_cannot_touch_later_occupants() {
        let mut q = EventQueue::new();
        let old = q.push_keyed(Timestamp::from_secs(1), "old");
        q.clear();
        assert_eq!(q.cancel(old), None);
        let _new = q.push_keyed(Timestamp::from_secs(2), "new");
        assert_eq!(q.cancel(old), None, "pre-clear key on a recycled slot");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Timestamp::from_secs(2), "new")));
    }

    #[test]
    fn cancelled_entries_do_not_disturb_fifo_order() {
        let mut q = EventQueue::new();
        let t = Timestamp::from_secs(1);
        let keys: Vec<EventKey> = (0..10).map(|i| q.push_keyed(t, i)).collect();
        // Cancel the odd ones; evens must still pop in insertion order.
        for (i, k) in keys.iter().enumerate() {
            if i % 2 == 1 {
                assert!(q.cancel(*k).is_some());
            }
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 2, 4, 6, 8]);
    }
}
