//! A deterministic future-event list.
//!
//! [`EventQueue`] orders items primarily by their firing [`Timestamp`]; items
//! scheduled for the *same* instant are delivered in insertion order. That
//! tie-break is what makes whole-simulation runs reproducible: a plain binary
//! heap over timestamps alone would pop equal-time events in an arbitrary
//! order that depends on heap internals.
//!
//! ```
//! use envirotrack_sim::queue::EventQueue;
//! use envirotrack_sim::time::Timestamp;
//!
//! let mut q = EventQueue::new();
//! q.push(Timestamp::from_secs(2), "late");
//! q.push(Timestamp::from_secs(1), "early");
//! q.push(Timestamp::from_secs(1), "early-second");
//! assert_eq!(q.pop(), Some((Timestamp::from_secs(1), "early")));
//! assert_eq!(q.pop(), Some((Timestamp::from_secs(1), "early-second")));
//! assert_eq!(q.pop(), Some((Timestamp::from_secs(2), "late")));
//! assert_eq!(q.pop(), None);
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Timestamp;

/// A single scheduled entry. Ordered so that the binary heap (a max-heap)
/// pops the earliest time first, then the lowest sequence number.
struct Entry<E> {
    at: Timestamp,
    seq: u64,
    item: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we want the earliest entry.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events with deterministic FIFO ordering among
/// events scheduled for the same instant.
///
/// The queue never reorders same-time events, so a simulation driven from it
/// is a pure function of its inputs and RNG seed.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `item` to fire at instant `at`.
    pub fn push(&mut self, at: Timestamp, item: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, item });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Timestamp, E)> {
        self.heap.pop().map(|e| (e.at, e.item))
    }

    /// The firing time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Timestamp::from_secs(3), 'c');
        q.push(Timestamp::from_secs(1), 'a');
        q.push(Timestamp::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = Timestamp::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_pushes_preserve_fifo_per_instant() {
        let mut q = EventQueue::new();
        let t1 = Timestamp::from_secs(1);
        let t2 = Timestamp::from_secs(2);
        q.push(t2, "t2-first");
        q.push(t1, "t1-first");
        q.push(t2, "t2-second");
        q.push(t1, "t1-second");
        assert_eq!(q.pop().unwrap().1, "t1-first");
        assert_eq!(q.pop().unwrap().1, "t1-second");
        assert_eq!(q.pop().unwrap().1, "t2-first");
        assert_eq!(q.pop().unwrap().1, "t2-second");
    }

    #[test]
    fn peek_and_len_reflect_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Timestamp::from_secs(5), ());
        q.push(Timestamp::from_secs(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Timestamp::from_secs(4)));
        q.clear();
        assert!(q.is_empty());
    }
}
