//! # envirotrack-sim
//!
//! The discrete-event simulation kernel underlying the EnviroTrack
//! reproduction. The paper ran on physical MICA motes; this crate provides
//! the deterministic substrate on which every other crate in the workspace
//! (radio medium, mote runtime, middleware) executes.
//!
//! ## Pieces
//!
//! * [`time`] — integral virtual time ([`time::Timestamp`],
//!   [`time::SimDuration`]).
//! * [`queue`] — a future-event list that is FIFO among equal timestamps.
//! * [`rng`] — seeded, forkable randomness ([`rng::SimRng`]).
//! * [`engine`] — the run loop ([`engine::Engine`], [`engine::Kernel`]).
//! * [`metrics`] — counters, streaming stats, histograms.
//!
//! ## Example
//!
//! ```
//! use envirotrack_sim::prelude::*;
//!
//! struct World { pings: u32 }
//!
//! let mut engine = Engine::new(World { pings: 0 }, 0xE417);
//! engine.kernel_mut().schedule_at(Timestamp::from_secs(1), |w: &mut World, _k| {
//!     w.pings += 1;
//! });
//! engine.run_until(Timestamp::from_secs(2));
//! assert_eq!(engine.world().pings, 1);
//! ```
//!
//! ## Determinism contract
//!
//! Given identical world construction, identical scheduled events, and an
//! identical seed, two runs execute byte-identical event sequences. The
//! contract rests on (a) integral timestamps, (b) FIFO tie-breaking in the
//! queue, and (c) all randomness flowing from [`rng::SimRng`].

pub mod engine;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod time;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::engine::{Engine, Kernel, RunOutcome};
    pub use crate::metrics::{Counter, Histogram, RunningStats};
    pub use crate::rng::SimRng;
    pub use crate::time::{SimDuration, Timestamp};
}
