//! The discrete-event simulation engine.
//!
//! An [`Engine`] owns a user-supplied *world* (the mutable state of the whole
//! simulation — nodes, radio medium, targets) and a [`Kernel`] (virtual
//! clock, event queue, RNG). Events are boxed `FnOnce` closures invoked with
//! exclusive access to both, so handlers can mutate the world *and* schedule
//! follow-up events:
//!
//! ```
//! use envirotrack_sim::engine::Engine;
//! use envirotrack_sim::time::{SimDuration, Timestamp};
//!
//! struct Counter { ticks: u32 }
//!
//! let mut engine = Engine::new(Counter { ticks: 0 }, 42);
//!
//! // A self-rescheduling periodic tick.
//! fn tick(world: &mut Counter, kernel: &mut envirotrack_sim::engine::Kernel<Counter>) {
//!     world.ticks += 1;
//!     if world.ticks < 5 {
//!         kernel.schedule_in(SimDuration::from_secs(1), tick);
//!     }
//! }
//! engine.kernel_mut().schedule_at(Timestamp::ZERO, tick);
//! engine.run_until(Timestamp::from_secs(10));
//! assert_eq!(engine.world().ticks, 5);
//! assert_eq!(engine.kernel().now(), Timestamp::from_secs(10));
//! ```
//!
//! Determinism: the event queue is FIFO among equal timestamps and all
//! randomness flows from the seed, so two runs with identical configuration
//! produce identical traces (see `trace` support below and the integration
//! tests).

use envirotrack_telemetry::{CounterHandle, Telemetry};

pub use crate::queue::EventKey;
use crate::queue::EventQueue;
use crate::rng::SimRng;
use crate::time::{SimDuration, Timestamp};

/// A scheduled event: a one-shot closure over the world and the kernel.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Kernel<W>)>;

/// The simulation kernel: virtual clock, future-event list, and seeded RNG.
///
/// Handlers receive `&mut Kernel<W>` and use it to read the clock, draw
/// randomness, schedule further events, and request a stop.
pub struct Kernel<W> {
    now: Timestamp,
    queue: EventQueue<EventFn<W>>,
    rng: SimRng,
    stop_requested: bool,
    events_processed: u64,
    trace: Option<TraceLog>,
    telemetry: Option<Telemetry>,
    /// Pre-resolved `kernel.events` counter: the per-event accounting is one
    /// cell increment instead of a registry borrow + name lookup.
    events_counter: Option<CounterHandle>,
}

impl<W> Kernel<W> {
    fn new(seed: u64) -> Self {
        Kernel {
            now: Timestamp::ZERO,
            queue: EventQueue::new(),
            rng: SimRng::seed_from(seed),
            stop_requested: false,
            events_processed: 0,
            trace: None,
            telemetry: None,
            events_counter: None,
        }
    }

    /// Attaches the run-wide telemetry registry; the kernel counts every
    /// executed event on it (`kernel.events`).
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.events_counter = Some(telemetry.counter_handle("kernel.events"));
        self.telemetry = Some(telemetry);
    }

    /// The attached telemetry registry, if any.
    #[must_use]
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The seeded random number generator for this run.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedules `event` to run at absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — the simulator has no time machine, and
    /// silently clamping would hide protocol bugs.
    pub fn schedule_at<F>(&mut self, at: Timestamp, event: F)
    where
        F: FnOnce(&mut W, &mut Kernel<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        self.queue.push(at, Box::new(event));
    }

    /// Schedules `event` to run `delay` after the current instant.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, event: F)
    where
        F: FnOnce(&mut W, &mut Kernel<W>) + 'static,
    {
        let at = self.now.saturating_add(delay);
        self.queue.push(at, Box::new(event));
    }

    /// Schedules `event` at absolute instant `at` and returns a key that
    /// [`Kernel::cancel`] accepts while the event is still pending.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past, like [`Kernel::schedule_at`].
    pub fn schedule_at_cancellable<F>(&mut self, at: Timestamp, event: F) -> EventKey
    where
        F: FnOnce(&mut W, &mut Kernel<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        self.queue.push_keyed(at, Box::new(event))
    }

    /// Schedules `event` after `delay`, returning a cancellation key.
    pub fn schedule_in_cancellable<F>(&mut self, delay: SimDuration, event: F) -> EventKey
    where
        F: FnOnce(&mut W, &mut Kernel<W>) + 'static,
    {
        let at = self.now.saturating_add(delay);
        self.queue.push_keyed(at, Box::new(event))
    }

    /// Cancels a pending event. Returns whether anything was cancelled —
    /// `false` for a key whose event already ran or was already cancelled
    /// (a one-shot timer racing its own cancellation is not a bug).
    pub fn cancel(&mut self, key: EventKey) -> bool {
        self.queue.cancel(key).is_some()
    }

    /// Requests that the run loop stop after the current event completes.
    pub fn stop(&mut self) {
        self.stop_requested = true;
    }

    /// Number of events executed so far in this run.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events still pending.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Enables trace capture with the given capacity (older entries beyond
    /// the capacity are dropped). Used by determinism tests.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceLog::with_capacity(capacity));
    }

    /// Records a trace entry if tracing is enabled; free otherwise.
    pub fn trace(&mut self, label: impl FnOnce() -> String) {
        if let Some(t) = &mut self.trace {
            t.record(self.now, label());
        }
    }

    /// The captured trace, if tracing was enabled.
    #[must_use]
    pub fn trace_log(&self) -> Option<&TraceLog> {
        self.trace.as_ref()
    }
}

impl<W> std::fmt::Debug for Kernel<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.events_processed)
            .finish()
    }
}

/// Why a call to one of the run methods returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The horizon was reached; the clock now equals the horizon.
    HorizonReached,
    /// The event queue drained before the horizon.
    QueueDrained,
    /// A handler called [`Kernel::stop`].
    Stopped,
    /// The safety cap on event count was hit (runaway-simulation guard).
    EventLimit,
}

/// A discrete-event simulation engine over a user world `W`.
///
/// See the [module documentation](self) for an end-to-end example.
pub struct Engine<W> {
    kernel: Kernel<W>,
    world: W,
    event_limit: u64,
}

impl<W> Engine<W> {
    /// Default safety cap on the number of events per run-call.
    pub const DEFAULT_EVENT_LIMIT: u64 = 2_000_000_000;

    /// Creates an engine over `world`, seeding all randomness from `seed`.
    pub fn new(world: W, seed: u64) -> Self {
        Engine {
            kernel: Kernel::new(seed),
            world,
            event_limit: Self::DEFAULT_EVENT_LIMIT,
        }
    }

    /// Replaces the runaway-simulation guard (events per run call).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Shared access to the world.
    #[must_use]
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (e.g. for inspection between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Shared access to the kernel.
    #[must_use]
    pub fn kernel(&self) -> &Kernel<W> {
        &self.kernel
    }

    /// Exclusive access to the kernel (e.g. to schedule initial events).
    pub fn kernel_mut(&mut self) -> &mut Kernel<W> {
        &mut self.kernel
    }

    /// Consumes the engine, returning the final world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Executes exactly one event if one is pending, returning its time.
    pub fn step(&mut self) -> Option<Timestamp> {
        let (at, event) = self.kernel.queue.pop()?;
        debug_assert!(
            at >= self.kernel.now,
            "event queue yielded an event from the past"
        );
        self.kernel.now = at;
        self.kernel.events_processed += 1;
        if let Some(c) = &self.kernel.events_counter {
            c.incr();
        }
        event(&mut self.world, &mut self.kernel);
        Some(at)
    }

    /// Runs until the virtual clock reaches `horizon`, the queue drains, a
    /// handler stops the run, or the event cap is hit.
    ///
    /// On [`RunOutcome::HorizonReached`] and [`RunOutcome::QueueDrained`]
    /// the clock is advanced to `horizon` so repeated calls compose.
    pub fn run_until(&mut self, horizon: Timestamp) -> RunOutcome {
        let start_processed = self.kernel.events_processed;
        loop {
            if self.kernel.stop_requested {
                self.kernel.stop_requested = false;
                return RunOutcome::Stopped;
            }
            if self.kernel.events_processed - start_processed >= self.event_limit {
                return RunOutcome::EventLimit;
            }
            match self.kernel.queue.peek_time() {
                None => {
                    self.kernel.now = self.kernel.now.max(horizon);
                    return RunOutcome::QueueDrained;
                }
                Some(t) if t > horizon => {
                    self.kernel.now = self.kernel.now.max(horizon);
                    return RunOutcome::HorizonReached;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }

    /// Runs for `span` of virtual time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) -> RunOutcome {
        let horizon = self.kernel.now.saturating_add(span);
        self.run_until(horizon)
    }

    /// Runs until the queue drains or a handler stops the run.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run_until(Timestamp::MAX)
    }
}

impl<W: std::fmt::Debug> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("kernel", &self.kernel)
            .field("world", &self.world)
            .finish()
    }
}

/// A bounded in-order log of `(time, label)` trace points.
///
/// Two runs of the same configuration must produce byte-identical trace
/// logs; the determinism integration tests assert exactly that.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceLog {
    entries: Vec<(Timestamp, String)>,
    capacity: usize,
    dropped: u64,
}

impl TraceLog {
    /// Creates a log that keeps at most `capacity` entries.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        TraceLog {
            entries: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an entry, dropping it (counted) if the log is full.
    pub fn record(&mut self, at: Timestamp, label: String) {
        if self.entries.len() < self.capacity {
            self.entries.push((at, label));
        } else {
            self.dropped += 1;
        }
    }

    /// The captured entries in execution order.
    #[must_use]
    pub fn entries(&self) -> &[(Timestamp, String)] {
        &self.entries
    }

    /// How many entries were dropped because the log filled up.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    #[test]
    fn events_run_in_time_order_with_fifo_ties() {
        let mut e = Engine::new(World::default(), 1);
        e.kernel_mut()
            .schedule_at(Timestamp::from_secs(2), |w: &mut World, k| {
                w.log.push((k.now().as_micros(), "b"));
            });
        e.kernel_mut()
            .schedule_at(Timestamp::from_secs(1), |w: &mut World, k| {
                w.log.push((k.now().as_micros(), "a1"));
            });
        e.kernel_mut()
            .schedule_at(Timestamp::from_secs(1), |w: &mut World, k| {
                w.log.push((k.now().as_micros(), "a2"));
            });
        assert_eq!(e.run_to_completion(), RunOutcome::QueueDrained);
        assert_eq!(
            e.world().log,
            vec![(1_000_000, "a1"), (1_000_000, "a2"), (2_000_000, "b")]
        );
    }

    /// The epoch-barrier contract the sharded kernel
    /// (`envirotrack-core::shard`) builds on: `run_until(b)` consumes
    /// every event at or before `b`, so an event scheduled *at* `b`
    /// afterwards (legal — `schedule_at` accepts `at == now`) is strictly
    /// the next to execute, ahead of anything later. Barrier injections
    /// therefore occupy a fixed point in the global event order.
    #[test]
    fn post_horizon_scheduling_at_the_horizon_runs_next() {
        let b = Timestamp::from_secs(2);
        let mut e = Engine::new(World::default(), 1);
        e.kernel_mut().schedule_at(b, |w: &mut World, _| {
            w.log.push((0, "pre-barrier"));
        });
        e.kernel_mut()
            .schedule_at(b + SimDuration::from_micros(1), |w: &mut World, _| {
                w.log.push((0, "post-barrier"));
            });
        assert_eq!(e.run_until(b), RunOutcome::HorizonReached);
        assert_eq!(e.world().log, vec![(0, "pre-barrier")], "run_until is inclusive");
        e.kernel_mut().schedule_at(b, |w: &mut World, k| {
            w.log.push((k.now().as_micros(), "injected"));
        });
        e.run_to_completion();
        assert_eq!(
            e.world().log,
            vec![
                (0, "pre-barrier"),
                (2_000_000, "injected"),
                (0, "post-barrier")
            ]
        );
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut e = Engine::new(World::default(), 1);
        e.kernel_mut()
            .schedule_at(Timestamp::from_secs(1), |_w: &mut World, k| {
                k.schedule_in(SimDuration::from_secs(1), |w: &mut World, k| {
                    w.log.push((k.now().as_micros(), "child"));
                });
            });
        e.run_to_completion();
        assert_eq!(e.world().log, vec![(2_000_000, "child")]);
    }

    #[test]
    fn run_until_respects_horizon_and_advances_clock() {
        let mut e = Engine::new(World::default(), 1);
        e.kernel_mut()
            .schedule_at(Timestamp::from_secs(5), |w: &mut World, _| {
                w.log.push((5, "late"));
            });
        assert_eq!(
            e.run_until(Timestamp::from_secs(3)),
            RunOutcome::HorizonReached
        );
        assert!(e.world().log.is_empty());
        assert_eq!(e.kernel().now(), Timestamp::from_secs(3));
        assert_eq!(
            e.run_until(Timestamp::from_secs(6)),
            RunOutcome::QueueDrained
        );
        assert_eq!(e.world().log.len(), 1);
        assert_eq!(e.kernel().now(), Timestamp::from_secs(6));
    }

    #[test]
    fn stop_interrupts_the_run() {
        let mut e = Engine::new(World::default(), 1);
        e.kernel_mut()
            .schedule_at(Timestamp::from_secs(1), |_: &mut World, k| k.stop());
        e.kernel_mut()
            .schedule_at(Timestamp::from_secs(2), |w: &mut World, _| {
                w.log.push((2, "unreachable"));
            });
        assert_eq!(e.run_to_completion(), RunOutcome::Stopped);
        assert!(e.world().log.is_empty());
        // Stop is one-shot: the next run proceeds.
        assert_eq!(e.run_to_completion(), RunOutcome::QueueDrained);
        assert_eq!(e.world().log.len(), 1);
    }

    #[test]
    fn event_limit_halts_runaway_simulations() {
        fn forever(_: &mut World, k: &mut Kernel<World>) {
            k.schedule_in(SimDuration::from_micros(1), forever);
        }
        let mut e = Engine::new(World::default(), 1);
        e.set_event_limit(1000);
        e.kernel_mut().schedule_at(Timestamp::ZERO, forever);
        assert_eq!(e.run_to_completion(), RunOutcome::EventLimit);
        assert_eq!(e.kernel().events_processed(), 1000);
    }

    #[test]
    fn cancelled_events_never_fire_and_stale_cancels_are_noops() {
        let mut e = Engine::new(World::default(), 1);
        let doomed = e
            .kernel_mut()
            .schedule_at_cancellable(Timestamp::from_secs(1), |w: &mut World, _| {
                w.log.push((1, "doomed"));
            });
        e.kernel_mut()
            .schedule_at(Timestamp::from_secs(2), |w: &mut World, _| {
                w.log.push((2, "kept"));
            });
        let fired = e
            .kernel_mut()
            .schedule_in_cancellable(SimDuration::from_secs(3), |w: &mut World, _| {
                w.log.push((3, "fired"));
            });
        assert!(e.kernel_mut().cancel(doomed));
        assert!(!e.kernel_mut().cancel(doomed), "double cancel is a no-op");
        assert_eq!(e.run_to_completion(), RunOutcome::QueueDrained);
        assert_eq!(e.world().log, vec![(2, "kept"), (3, "fired")]);
        assert!(
            !e.kernel_mut().cancel(fired),
            "cancelling an already-fired event is a no-op"
        );
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e = Engine::new(World::default(), 1);
        e.kernel_mut()
            .schedule_at(Timestamp::from_secs(1), |_: &mut World, _| {});
        e.run_to_completion();
        e.kernel_mut()
            .schedule_at(Timestamp::ZERO, |_: &mut World, _| {});
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        fn run(seed: u64) -> TraceLog {
            let mut e = Engine::new(World::default(), seed);
            e.kernel_mut().enable_trace(1024);
            fn step(n: u32) -> impl FnOnce(&mut World, &mut Kernel<World>) {
                move |_, k| {
                    let draw = k.rng().below(100);
                    k.trace(|| format!("step {n} draw {draw}"));
                    if n < 20 {
                        let jitter = SimDuration::from_micros(k.rng().below(5000));
                        k.schedule_in(jitter, step(n + 1));
                    }
                }
            }
            e.kernel_mut().schedule_at(Timestamp::ZERO, step(0));
            e.run_to_completion();
            e.kernel().trace_log().unwrap().clone()
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }

    #[test]
    fn trace_log_caps_and_counts_drops() {
        let mut log = TraceLog::with_capacity(2);
        log.record(Timestamp::ZERO, "a".into());
        log.record(Timestamp::ZERO, "b".into());
        log.record(Timestamp::ZERO, "c".into());
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.dropped(), 1);
    }
}
