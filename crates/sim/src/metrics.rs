//! Lightweight statistics used by the radio model and the experiment harness.
//!
//! Nothing here is tied to virtual time; these are plain accumulators:
//!
//! * [`Counter`] — a monotone event count with a ratio helper.
//! * [`RunningStats`] — Welford mean/variance/min/max over `f64` samples.
//! * [`Histogram`] — fixed-width bins with quantile queries.
//!
//! ```
//! use envirotrack_sim::metrics::RunningStats;
//!
//! let mut s = RunningStats::new();
//! for x in [1.0, 2.0, 3.0] {
//!     s.push(x);
//! }
//! assert_eq!(s.mean(), 2.0);
//! assert_eq!(s.len(), 3);
//! ```

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    #[must_use]
    pub const fn count(self) -> u64 {
        self.0
    }

    /// `self / total` as a fraction in `[0, 1]`; zero when `total` is zero.
    ///
    /// Handy for loss rates: `lost.ratio_of(sent.count())`.
    #[must_use]
    pub fn ratio_of(self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

/// Streaming mean/variance/min/max using Welford's algorithm.
///
/// Numerically stable for long runs (no sum-of-squares cancellation).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The sample mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// The population variance (0 when fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// The population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample seen (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

/// A fixed-width-bin histogram over `[lo, hi)` with overflow/underflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty: [{lo}, {hi})");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one sample.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of samples recorded (including out-of-range ones).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// An approximate quantile (`q` in `[0,1]`) using bin midpoints.
    /// Returns `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &count) in self.bins.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(self.lo + w * (i as f64 + 0.5));
            }
        }
        Some(self.hi)
    }

    /// Bin counts (not including underflow/overflow).
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_ratios() {
        let mut c = Counter::new();
        c.incr();
        c.add(3);
        assert_eq!(c.count(), 4);
        assert_eq!(c.ratio_of(8), 0.5);
        assert_eq!(c.ratio_of(0), 0.0);
    }

    #[test]
    fn running_stats_match_closed_form() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_well_behaved() {
        let s = RunningStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn merge_equals_sequential_pushes() {
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        let mut whole = RunningStats::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            whole.push(x);
        }
        a.merge(&b);
        assert_eq!(a.len(), whole.len());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.push(i as f64 / 10.0); // 0.0 .. 9.9 uniformly
        }
        assert_eq!(h.len(), 100);
        let median = h.quantile(0.5).unwrap();
        assert!((median - 5.0).abs() <= 1.0, "median {median}");
        assert_eq!(h.quantile(0.0).unwrap(), 0.5); // midpoint of first bin
    }

    #[test]
    fn histogram_tracks_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-1.0);
        h.push(2.0);
        h.push(0.5);
        assert_eq!(h.len(), 3);
        assert_eq!(h.bins().iter().sum::<u64>(), 1);
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
    }
}
