//! Property-based tests for the simulation kernel.

use envirotrack_sim::metrics::RunningStats;
use envirotrack_sim::queue::EventQueue;
use envirotrack_sim::rng::SimRng;
use envirotrack_sim::time::{SimDuration, Timestamp};
use testkit::prelude::*;

prop_test! {
    /// Popping the queue yields items sorted by time, and FIFO among equal
    /// times (tracked via the insertion index).
    #[test]
    fn queue_pops_sorted_and_fifo(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Timestamp::from_micros(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated for equal times");
            }
        }
    }

    /// Slot pooling is invisible to queue semantics: a pooled and an
    /// unpooled queue driven by the same randomized push/cancel/pop
    /// schedule agree on every pop result, every cancellation outcome
    /// (including stale keys), and every intermediate length/peek.
    #[test]
    fn queue_pooling_never_changes_pop_or_cancel_semantics(
        ops in prop::collection::vec((0u8..8, 0u64..500), 1..300),
    ) {
        let mut pooled = EventQueue::new();
        let mut plain = EventQueue::with_pooling(false);
        let mut pooled_keys = Vec::new();
        let mut plain_keys = Vec::new();
        let mut next_item = 0usize;
        for &(op, t) in &ops {
            match op {
                // Bias toward pushes so schedules grow interesting.
                0..=3 => {
                    let at = Timestamp::from_micros(t);
                    pooled_keys.push(pooled.push_keyed(at, next_item));
                    plain_keys.push(plain.push_keyed(at, next_item));
                    next_item += 1;
                }
                4 | 5 if !pooled_keys.is_empty() => {
                    // Cancel an arbitrary previously issued key; stale
                    // (already popped/cancelled) keys must be no-ops in
                    // both queues alike.
                    let pick = t as usize % pooled_keys.len();
                    let a = pooled.cancel(pooled_keys[pick]);
                    let b = plain.cancel(plain_keys[pick]);
                    prop_assert_eq!(a, b, "cancel outcome diverged");
                }
                _ => {
                    prop_assert_eq!(pooled.pop(), plain.pop(), "pop diverged");
                }
            }
            prop_assert_eq!(pooled.len(), plain.len());
            prop_assert_eq!(pooled.peek_time(), plain.peek_time());
        }
        // Drain both to the end: the tails must match exactly too.
        loop {
            let (a, b) = (pooled.pop(), plain.pop());
            prop_assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
        prop_assert!(pooled.reused_slots() >= plain.reused_slots());
        prop_assert_eq!(plain.reused_slots(), 0);
    }

    /// Welford statistics match the naive two-pass computation.
    #[test]
    fn running_stats_match_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let stats: RunningStats = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((stats.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((stats.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(stats.min(), Some(min));
        prop_assert_eq!(stats.max(), Some(max));
    }

    /// Merging split halves equals processing the whole stream.
    #[test]
    fn running_stats_merge_is_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 0..100),
        ys in prop::collection::vec(-1e3f64..1e3, 0..100),
    ) {
        let mut a: RunningStats = xs.iter().copied().collect();
        let b: RunningStats = ys.iter().copied().collect();
        a.merge(&b);
        let whole: RunningStats = xs.iter().chain(ys.iter()).copied().collect();
        prop_assert_eq!(a.len(), whole.len());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-3);
    }

    /// Timestamp/duration arithmetic is consistent: (t + d) − t == d and
    /// (t + d) − d == t for any in-range values.
    #[test]
    fn time_arithmetic_round_trips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = Timestamp::from_micros(t);
        let d = SimDuration::from_micros(d);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
        prop_assert!(t.saturating_since(t + d).is_zero());
    }

    /// Forked RNG streams are stable: forking twice with the same label
    /// gives the same stream, regardless of parent draws in between.
    #[test]
    fn rng_forks_are_stable(seed: u64, label in "[a-z]{1,12}", draws in 0usize..16) {
        let mut parent = SimRng::seed_from(seed);
        let early = parent.fork(&label);
        for _ in 0..draws {
            let _ = parent.next_u64();
        }
        let late = parent.fork(&label);
        let mut a = early.clone();
        let mut b = late.clone();
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// `below(n)` stays in range and `chance` respects its clamps.
    #[test]
    fn rng_bounds_hold(seed: u64, n in 1u64..10_000) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..64 {
            prop_assert!(rng.below(n) < n);
            let u = rng.uniform();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }
}
