//! Protocol conformance battery: hostile and broken clients.
//!
//! Every scenario here is a way real networks abuse servers — truncated
//! frames, flipped bits, absurd length prefixes, unknown tags, half-open
//! peers, mid-frame disconnects, slow-loris writers. The server must (a)
//! never panic, (b) never treat a corrupt frame as valid, and (c) account
//! for every dropped connection in exactly one counter — the metrics
//! accounting identity at the bottom is the "no silent drops" pin.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use envirotrack_core::context::ContextTypeId;
use envirotrack_core::wire::session::{
    Close, CloseReason, Hello, SessionMsg, Subscribe, CAP_ALL, SESSION_VERSION,
};
use envirotrack_serve::client::Handshake;
use envirotrack_serve::worlds::SCENARIO_TESTBED;
use envirotrack_serve::{Client, HubConfig, Server, ServerConfig};
use envirotrack_sim::time::SimDuration;

const RECV_TIMEOUT: Option<Duration> = Some(Duration::from_secs(30));

fn battery_server() -> Server {
    Server::start(ServerConfig {
        workers: 2,
        max_sessions: 128,
        send_budget: 64,
        // Short so half-open and slow-loris connections are reaped within
        // the test, long enough that honest-but-slow frames get through.
        idle_timeout: Duration::from_millis(1500),
        hub: HubConfig {
            max_worlds: 2,
            tick_virtual: SimDuration::from_millis(500),
            tick_real: Duration::from_millis(1),
            ..HubConfig::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

fn load(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

/// Expects the server to answer CLOSE(ProtocolError) and drop the
/// connection.
fn expect_protocol_error_close(c: &mut Client) {
    loop {
        match c.recv() {
            Ok(SessionMsg::Close(cl)) => {
                assert_eq!(cl.reason, CloseReason::ProtocolError);
                return;
            }
            Ok(SessionMsg::Event(_) | SessionMsg::SubAck(_)) => {}
            Ok(other) => panic!("expected CLOSE(ProtocolError), got {other:?}"),
            // The grace window may expire before our read; EOF is also a
            // valid way to learn the session died.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return,
            Err(e) => panic!("expected CLOSE(ProtocolError), got error {e}"),
        }
    }
}

/// Spins until `probe` returns true or the deadline passes.
fn wait_for(what: &str, probe: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn conformance_battery_accounts_for_every_drop() {
    let server = battery_server();
    let metrics = Arc::clone(server.metrics());
    let addr = server.addr();

    // --- 1. Corrupt CRC: flip one bit in a valid HELLO frame. ----------
    {
        let mut bytes = SessionMsg::Hello(Hello {
            version: SESSION_VERSION,
            caps: CAP_ALL,
            recv_budget: 32,
        })
        .encode()
        .to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let mut c = Client::connect(addr, RECV_TIMEOUT).expect("connect");
        c.send_raw(&bytes).expect("send corrupt frame");
        expect_protocol_error_close(&mut c);
    }
    wait_for("corrupt frame accounted", || load(&metrics.corrupt_frames) >= 1);

    // --- 2. Oversized length prefix: claims a 1 GiB body. --------------
    {
        let mut prefix = bytes::BytesMut::new();
        envirotrack_core::wire::varint::put_uvarint(&mut prefix, 1 << 30);
        let mut c = Client::connect(addr, RECV_TIMEOUT).expect("connect");
        c.send_raw(&prefix.freeze()).expect("send oversized prefix");
        expect_protocol_error_close(&mut c);
    }
    wait_for("oversized frame accounted", || {
        load(&metrics.oversized_frames) >= 1
    });

    // --- 3. Unknown tag inside a CRC-valid frame. -----------------------
    {
        // Hand-build frame(body=[0x70]) — tag 112 does not exist — with a
        // correct CRC so only tag validation can reject it.
        let mut raw = bytes::BytesMut::new();
        envirotrack_core::wire::varint::put_uvarint(&mut raw, 1);
        bytes::BufMut::put_u8(&mut raw, 0x70);
        let crc = envirotrack_core::wire::crc::crc32(&raw);
        bytes::BufMut::put_slice(&mut raw, &crc.to_le_bytes());
        let mut c = Client::connect(addr, RECV_TIMEOUT).expect("connect");
        c.send_raw(&raw.freeze()).expect("send unknown tag");
        expect_protocol_error_close(&mut c);
    }

    // --- 4. Truncated frame then disconnect (mid-frame disconnect). ----
    {
        let bytes = SessionMsg::Hello(Hello {
            version: SESSION_VERSION,
            caps: CAP_ALL,
            recv_budget: 32,
        })
        .encode();
        let mut c = Client::connect(addr, RECV_TIMEOUT).expect("connect");
        c.send_raw(&bytes[..bytes.len() / 2]).expect("half a frame");
        drop(c); // FIN mid-frame: must be a plain disconnect, not a panic
    }
    wait_for("mid-frame disconnect accounted", || {
        load(&metrics.disconnects) >= 1
    });

    // --- 5. Half-open connection: connect, send nothing, never close. ---
    // (Keep the socket alive past the idle timeout; the reaper must CLOSE
    // it and count an idle timeout.)
    let half_open = TcpStream::connect(addr).expect("half-open connect");
    wait_for("half-open reaped", || load(&metrics.idle_timeouts) >= 1);
    drop(half_open);

    // --- 6. Slow loris: a valid PING written one byte per 100 ms. -------
    // The frame completes long before the idle timeout (each byte resets
    // activity), so slow-but-honest clients survive; the test pins that
    // byte-at-a-time arrival neither panics nor desyncs the framer.
    {
        let mut c = Client::connect(addr, RECV_TIMEOUT).expect("connect");
        match c.hello(CAP_ALL, 32).expect("handshake") {
            Handshake::Accepted(_) => {}
            Handshake::Rejected(r) => panic!("rejected: {:?}", r.reason),
        }
        let ping = SessionMsg::Ping { nonce: 42 }.encode();
        for b in ping.iter() {
            c.send_raw(std::slice::from_ref(b)).expect("loris byte");
            std::thread::sleep(Duration::from_millis(100));
        }
        match c.recv().expect("pong for the slow ping") {
            SessionMsg::Pong { nonce } => assert_eq!(nonce, 42),
            other => panic!("expected PONG, got {other:?}"),
        }
        c.send(&SessionMsg::Close(Close {
            reason: CloseReason::Normal,
        }))
        .expect("close");
    }

    // --- 7. State violation: SUBSCRIBE before HELLO. ---------------------
    {
        let mut c = Client::connect(addr, RECV_TIMEOUT).expect("connect");
        c.send(&SessionMsg::Subscribe(Subscribe {
            query_id: 1,
            scenario: SCENARIO_TESTBED,
            seed: 2,
            type_id: ContextTypeId(0),
        }))
        .expect("premature subscribe");
        expect_protocol_error_close(&mut c);
    }
    wait_for("state violation accounted", || {
        load(&metrics.state_violations) >= 1
    });

    // --- 8. Garbage firehose: 4 KiB of random-ish bytes. -----------------
    {
        let mut c = Client::connect(addr, RECV_TIMEOUT).expect("connect");
        let garbage: Vec<u8> = (0..4096u32).map(|i| (i.wrapping_mul(197) >> 3) as u8).collect();
        let _ = c.send_raw(&garbage); // server may RST mid-write; both fine
        let mut sink = [0u8; 1024];
        // Drain whatever the server says until it hangs up.
        let mut probe = c.stream().try_clone().expect("clone");
        let _ = probe.set_read_timeout(Some(Duration::from_secs(10)));
        while let Ok(n) = probe.read(&mut sink) {
            if n == 0 {
                break;
            }
        }
    }

    // --- The accounting identity: nothing dropped silently. -------------
    wait_for("all sessions terminal", || {
        load(&metrics.active_sessions) == 0
            && load(&metrics.connects)
                == load(&metrics.rejected_overload)
                    + load(&metrics.rejected_version)
                    + load(&metrics.rejected_bad_hello)
                    + metrics.terminal_total()
    });

    assert!(load(&metrics.protocol_errors) >= 4, "cases 1,2,3,7,8");
    assert_eq!(load(&metrics.panics), 0, "no worker or hub thread panicked");
    server.shutdown();
    assert_eq!(load(&metrics.panics), 0, "shutdown panicked nothing");
}

#[test]
fn zero_recv_budget_hello_is_a_bad_hello() {
    let server = battery_server();
    let mut c = Client::connect(server.addr(), RECV_TIMEOUT).expect("connect");
    match c.hello(CAP_ALL, 0).expect("handshake answered") {
        Handshake::Rejected(r) => assert_eq!(
            r.reason,
            envirotrack_core::wire::session::RejectReason::BadHello
        ),
        Handshake::Accepted(_) => panic!("a zero-budget session can never receive anything"),
    }
    let metrics = Arc::clone(server.metrics());
    server.shutdown();
    assert_eq!(load(&metrics.rejected_bad_hello), 1);
    assert_eq!(load(&metrics.panics), 0);
}

#[test]
fn write_then_vanish_storm_never_panics() {
    // 32 connections that each write a random prefix of a valid frame and
    // vanish immediately — the nastiest sequencing for read/EOF races.
    let server = battery_server();
    let metrics = Arc::clone(server.metrics());
    let bytes = SessionMsg::Hello(Hello {
        version: SESSION_VERSION,
        caps: CAP_ALL,
        recv_budget: 32,
    })
    .encode();
    for i in 0..32usize {
        let mut s = TcpStream::connect(server.addr()).expect("connect");
        let cut = i % (bytes.len() + 1);
        let _ = s.write_all(&bytes[..cut]);
        drop(s);
    }
    wait_for("all vanished sessions accounted", || {
        load(&metrics.connects) == 32
            && load(&metrics.active_sessions) == 0
            && load(&metrics.connects)
                == load(&metrics.rejected_overload)
                    + load(&metrics.rejected_version)
                    + load(&metrics.rejected_bad_hello)
                    + metrics.terminal_total()
    });
    server.shutdown();
    assert_eq!(load(&metrics.panics), 0);
}
