//! Backpressure under a stalled consumer.
//!
//! One client subscribes and then never reads its socket while N fast
//! clients stream normally. The pinned behaviour:
//!
//! * the stalled client is **shed** (outbox overflow → CLOSE(SlowConsumer)
//!   accounted in `slow_consumer_sheds`, drops in `events_dropped`),
//! * the fast clients keep receiving events with bounded gaps — the
//!   shared simulation never stops producing for them,
//! * the hub thread never blocks on the stalled session (pinned by the
//!   fast clients' continued progress *while* the staller is still
//!   connected, and by `panics == 0`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use envirotrack_core::context::ContextTypeId;
use envirotrack_core::wire::session::{Hello, SessionMsg, Subscribe, CAP_ALL, SESSION_VERSION};
use envirotrack_serve::worlds::SCENARIO_TESTBED;
use envirotrack_serve::{Client, HubConfig, Server, ServerConfig};
use envirotrack_sim::time::SimDuration;

fn load(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

#[test]
fn stalled_client_is_shed_while_fast_clients_stream() {
    let server = Server::start(ServerConfig {
        workers: 2,
        max_sessions: 64,
        // A generous budget every session can hold while its socket
        // drains: an actively-read connection never accumulates anywhere
        // near this, so only a genuinely stalled consumer overflows.
        send_budget: 1024,
        idle_timeout: Duration::from_secs(30),
        hub: HubConfig {
            max_worlds: 1,
            // High event rate: ~1000x real time with a 50 ms virtual
            // sampling interval → thousands of events per wall second,
            // enough to overrun the kernel's socket-buffer slack (a few
            // hundred KiB) plus the 1024-frame budget within seconds once
            // a consumer stops reading.
            tick_virtual: SimDuration::from_millis(1000),
            tick_real: Duration::from_millis(1),
            sample_virtual: SimDuration::from_millis(50),
        },
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let metrics = Arc::clone(server.metrics());
    let timeout = Some(Duration::from_secs(30));

    // The staller: handshake, subscribe, then never read again.
    let mut staller = Client::connect(server.addr(), timeout).expect("staller connect");
    staller
        .send(&SessionMsg::Hello(Hello {
            version: SESSION_VERSION,
            caps: CAP_ALL,
            recv_budget: 1024,
        }))
        .expect("staller hello");
    match staller.recv().expect("staller accept") {
        SessionMsg::Accept(_) => {}
        other => panic!("expected ACCEPT, got {other:?}"),
    }
    let ack = staller
        .subscribe(Subscribe {
            query_id: 99,
            scenario: SCENARIO_TESTBED,
            seed: 7,
            type_id: ContextTypeId(0),
        })
        .expect("staller subscribe");
    assert!(ack.accepted);
    // From here on the staller's socket is never read: its 1024-frame
    // outbox plus MAX_PENDING_WRITE plus the kernel buffers are all the
    // slack it gets.

    // Three fast clients on the same world.
    let mut fast: Vec<Client> = (0..3)
        .map(|i| {
            let mut c = Client::open(server.addr(), timeout).expect("fast connect");
            let ack = c
                .subscribe(Subscribe {
                    query_id: i,
                    scenario: SCENARIO_TESTBED,
                    seed: 7,
                    type_id: ContextTypeId(0),
                })
                .expect("fast subscribe");
            assert!(ack.accepted);
            c
        })
        .collect();

    // Fast clients must keep streaming with bounded inter-event latency
    // WHILE the staller is connected-but-frozen, and the shed must fire.
    let mut per_client_events = [0u64; 3];
    let mut max_gap = Duration::ZERO;
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut shed_seen = false;
    'outer: loop {
        for (i, c) in fast.iter_mut().enumerate() {
            let before = Instant::now();
            let e = c.next_event().expect("fast client event stream");
            max_gap = max_gap.max(before.elapsed());
            assert_eq!(e.query_id, u32::try_from(i).expect("small index"));
            per_client_events[i] += 1;
        }
        if !shed_seen && load(&metrics.slow_consumer_sheds) >= 1 {
            shed_seen = true;
        }
        // Stop once everyone has a healthy stream AND the shed happened.
        if shed_seen && per_client_events.iter().all(|&n| n >= 20) {
            break 'outer;
        }
        assert!(
            Instant::now() < deadline,
            "timed out: events={per_client_events:?} shed={shed_seen}"
        );
    }

    // Latency bound: with one event batch per ~1 ms of wall clock, a fast
    // client should never wait anywhere near this long for its next event.
    // The generous bound keeps the test robust on loaded CI machines while
    // still catching a hub that blocks on the stalled socket (which would
    // freeze everyone for the full run).
    assert!(
        max_gap < Duration::from_secs(10),
        "fast client starved for {max_gap:?} — the stalled session is blocking the pipeline"
    );

    // The shed is pinned in the counters, not just observed behaviour.
    assert!(load(&metrics.slow_consumer_sheds) >= 1, "staller was shed");
    assert!(
        load(&metrics.events_dropped) >= 1,
        "the staller's overflow drops are accounted"
    );
    assert_eq!(load(&metrics.panics), 0, "hub and workers survived");

    // The fast majority saw real throughput.
    assert!(per_client_events.iter().all(|&n| n >= 20));

    drop(staller);
    drop(fast);
    server.shutdown();
    assert_eq!(load(&metrics.panics), 0);
}
