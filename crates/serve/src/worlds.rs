//! The simulation hub: one thread owning every shared `SensorNetwork` run.
//!
//! The simulation stack is deliberately single-threaded (`Rc` handles,
//! deterministic event order), so it cannot be touched from the socket
//! workers. Instead *all* worlds live on one hub thread; workers talk to
//! it through an mpsc command queue and receive events through per-session
//! [`Outbox`]es — lock-guarded frame queues the hub only ever *try*-pushes
//! into. A slow consumer therefore fills its own outbox and gets shed; it
//! can never block the hub, and the shared simulation advances at full
//! speed for everyone else. This is the determinism boundary: virtual sim
//! time is produced on the hub clock, wall-clock pacing and delivery
//! happen outside it.
//!
//! Worlds are keyed by `(scenario, seed)` and shared: a thousand clients
//! subscribing to the same scenario+seed cost one simulation, not a
//! thousand. Each world wraps around when its tank finishes crossing — the
//! engine is rebuilt with the same seed and an epoch offset keeps event
//! timestamps monotone per query.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use envirotrack_core::aggregate::{AggValue, AggregateFn, AggregateInput};
use envirotrack_core::api::Program;
use envirotrack_core::context::{ContextTypeId, SensePredicate};
use envirotrack_core::network::{NetworkConfig, SensorNetwork};
use envirotrack_core::object::payload;
use envirotrack_core::wire::session::{SessionMsg, SubAck, TrackEvent};
use envirotrack_sim::engine::Engine;
use envirotrack_sim::time::{SimDuration, Timestamp};
use envirotrack_world::scenario::TankScenario;
use envirotrack_world::target::Channel;

use crate::metrics::ServeMetrics;

/// Scenario 0: the paper's 10×2 testbed grid.
pub const SCENARIO_TESTBED: u8 = 0;
/// Scenario 1: a wider, faster 20×3 field (requires `CAP_SCENARIO_RUN`).
pub const SCENARIO_WIDE: u8 = 1;

/// A bounded, shed-on-overflow frame queue from the hub to one session.
#[derive(Debug)]
pub struct Outbox {
    queue: Mutex<std::collections::VecDeque<Bytes>>,
    /// Maximum queued frames (the session's negotiated send budget).
    budget: usize,
    /// Set when a push overflowed: the session must be shed.
    shed: AtomicBool,
    /// Set by the worker when the session dies: the hub drops the
    /// subscription on its next tick.
    closed: AtomicBool,
    /// Frames dropped on the floor after overflow.
    dropped: AtomicU64,
}

impl Outbox {
    /// A new outbox holding at most `budget` frames.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        Outbox {
            queue: Mutex::new(std::collections::VecDeque::new()),
            budget: budget.max(1),
            shed: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
        }
    }

    /// Queues a frame; on overflow marks the outbox shed and returns
    /// `false`. Never blocks beyond the queue mutex (no waiting on the
    /// consumer).
    pub fn push(&self, frame: Bytes) -> bool {
        let mut q = self.queue.lock().expect("outbox lock");
        if q.len() >= self.budget {
            drop(q);
            self.shed.store(true, Ordering::Release);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        q.push_back(frame);
        true
    }

    /// Dequeues the next frame for the socket.
    #[must_use]
    pub fn pop(&self) -> Option<Bytes> {
        self.queue.lock().expect("outbox lock").pop_front()
    }

    /// Whether an overflow marked this session for shedding.
    #[must_use]
    pub fn is_shed(&self) -> bool {
        self.shed.load(Ordering::Acquire)
    }

    /// Marks the session dead so the hub forgets the subscription.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Whether the worker declared the session dead.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Frames dropped after overflow.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// A validated-at-the-hub subscription request.
pub struct SubscribeReq {
    /// Client-chosen query id, echoed in events.
    pub query_id: u32,
    /// Scenario catalog entry.
    pub scenario: u8,
    /// World RNG seed.
    pub seed: u64,
    /// Context type to stream leader positions for.
    pub type_id: ContextTypeId,
    /// Where acks and events for this session go.
    pub outbox: Arc<Outbox>,
    /// When the worker pulled the SUBSCRIBE off the socket, for the
    /// query-latency histograms.
    pub received_at: Instant,
}

/// A worker→hub request.
pub enum HubCommand {
    /// Register a streaming query on a (possibly new) world.
    Subscribe(SubscribeReq),
    /// Stop the hub thread.
    Shutdown,
}

/// Hub tuning knobs.
#[derive(Debug, Clone)]
pub struct HubConfig {
    /// Maximum concurrently simulated worlds; further `(scenario, seed)`
    /// keys are denied.
    pub max_worlds: usize,
    /// Virtual time each hub tick advances every world by.
    pub tick_virtual: SimDuration,
    /// Wall-clock pacing between hub ticks (the virtual:real speedup is
    /// `tick_virtual / tick_real`).
    pub tick_real: Duration,
    /// Virtual interval between leader snapshots *within* a tick: a tick
    /// emits `tick_virtual / sample_virtual` event batches. Equal to
    /// `tick_virtual` → one batch per tick.
    pub sample_virtual: SimDuration,
}

impl Default for HubConfig {
    fn default() -> Self {
        HubConfig {
            max_worlds: 8,
            tick_virtual: SimDuration::from_millis(200),
            tick_real: Duration::from_millis(2),
            sample_virtual: SimDuration::from_millis(200),
        }
    }
}

struct Subscription {
    query_id: u32,
    outbox: Arc<Outbox>,
    seq: u64,
    subscribed_at: Instant,
    first_event_recorded: bool,
}

struct World {
    engine: Engine<SensorNetwork>,
    scenario: u8,
    seed: u64,
    type_id: ContextTypeId,
    /// Virtual duration of one crossing; the engine is rebuilt past this.
    horizon: SimDuration,
    /// Accumulated virtual time of completed crossings, keeping event
    /// timestamps monotone across engine rebuilds.
    epoch: SimDuration,
    subs: Vec<Subscription>,
}

/// The figure-2 tracking program every served world runs.
fn serve_program() -> Arc<Program> {
    Arc::new(
        Program::builder()
            .context("tracker", |c| {
                c.activation(SensePredicate::threshold(Channel::Magnetic, 0.5))
                    .aggregate(
                        "location",
                        AggregateFn::CenterOfGravity,
                        AggregateInput::Position,
                        SimDuration::from_secs(1),
                        2,
                    )
                    .object("reporter", |o| {
                        o.on_timer("report", SimDuration::from_secs(5), |ctx| {
                            if let Ok(AggValue::Point(p)) = ctx.read("location") {
                                ctx.send_to_base(payload::position(p));
                            }
                        })
                    })
            })
            .build()
            .expect("the serve tracking program is valid"),
    )
}

fn scenario_spec(scenario: u8) -> Option<TankScenario> {
    match scenario {
        SCENARIO_TESTBED => Some(TankScenario {
            cols: 10,
            rows: 2,
            speed_hops_per_s: 0.5,
            sensing_radius: 1.0,
            lane_y: 0.5,
            approach: 1.5,
        }),
        SCENARIO_WIDE => Some(TankScenario {
            cols: 20,
            rows: 3,
            speed_hops_per_s: 1.0,
            sensing_radius: 1.5,
            lane_y: 1.0,
            approach: 2.0,
        }),
        _ => None,
    }
}

fn build_world(scenario: u8, seed: u64, type_id: ContextTypeId) -> Option<World> {
    let spec = scenario_spec(scenario)?;
    let built = spec.build();
    let tank = built.environment.target(built.primary_target)?.clone();
    let crossing = tank.trajectory().duration()?;
    let mut net_cfg = NetworkConfig::default();
    net_cfg.radio = net_cfg.radio.with_comm_radius(6.0).with_base_loss(0.05);
    let engine = SensorNetwork::build_engine(
        serve_program(),
        built.deployment,
        built.environment,
        net_cfg,
        seed,
    );
    Some(World {
        engine,
        scenario,
        seed,
        type_id,
        horizon: crossing + SimDuration::from_secs(5),
        epoch: SimDuration::ZERO,
        subs: Vec::new(),
    })
}

impl World {
    /// Advances virtual time by `slice` in sub-steps of `sample`,
    /// emitting a leader snapshot after each sub-step. A finer `sample`
    /// raises the event rate without changing the virtual:real speedup.
    fn tick(&mut self, slice: SimDuration, sample: SimDuration, metrics: &ServeMetrics) {
        let mut remaining = slice;
        while !remaining.is_zero() {
            let step = remaining.min(sample);
            remaining = remaining.saturating_sub(step);
            self.advance(step);
            self.emit(metrics);
        }
    }

    /// Advances virtual time by `slice`, wrapping (rebuild, same seed) at
    /// the crossing horizon.
    fn advance(&mut self, slice: SimDuration) {
        let target = self.engine.kernel().now().saturating_add(slice);
        if target.saturating_since(Timestamp::ZERO) > self.horizon {
            // Crossing complete: restart the same world, advancing the
            // epoch so per-query timestamps keep increasing.
            self.epoch += self.engine.kernel().now().saturating_since(Timestamp::ZERO);
            if let Some(fresh) = build_world(self.scenario, self.seed, self.type_id) {
                self.engine = fresh.engine;
            }
            self.engine.run_until(Timestamp::ZERO.saturating_add(slice));
        } else {
            self.engine.run_until(target);
        }
    }

    /// Fans the current leader positions out to every live subscription.
    fn emit(&mut self, metrics: &ServeMetrics) {
        self.subs.retain(|s| !s.outbox.is_closed());
        if self.subs.is_empty() {
            return;
        }
        let now = self.engine.kernel().now().saturating_since(Timestamp::ZERO);
        let at = Timestamp::ZERO.saturating_add(self.epoch + now);
        let leaders = self.engine.world().leaders_of_type(self.type_id);
        if leaders.is_empty() {
            return;
        }
        let deployment_positions: Vec<_> = leaders
            .iter()
            .map(|(n, label)| (*label, self.engine.world().deployment().position(*n)))
            .collect();
        for sub in &mut self.subs {
            if sub.outbox.is_shed() {
                continue; // stop wasting encode work on a doomed session
            }
            for (label, pos) in &deployment_positions {
                let frame = SessionMsg::Event(TrackEvent {
                    query_id: sub.query_id,
                    seq: sub.seq,
                    at,
                    label: *label,
                    pos: *pos,
                })
                .encode();
                if sub.outbox.push(frame) {
                    sub.seq += 1;
                    metrics.events_sent.fetch_add(1, Ordering::Relaxed);
                    if !sub.first_event_recorded {
                        sub.first_event_recorded = true;
                        let us = u64::try_from(sub.subscribed_at.elapsed().as_micros())
                            .unwrap_or(u64::MAX);
                        metrics.observe_first_event(us);
                    }
                } else {
                    metrics.events_dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Handle to the hub thread.
pub struct SimHub {
    tx: Sender<HubCommand>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for SimHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimHub").finish_non_exhaustive()
    }
}

impl SimHub {
    /// Spawns the hub thread.
    #[must_use]
    pub fn spawn(cfg: HubConfig, metrics: Arc<ServeMetrics>) -> SimHub {
        let (tx, rx) = std::sync::mpsc::channel();
        let join = std::thread::Builder::new()
            .name("serve-hub".into())
            .spawn(move || {
                let guard = PanicCounter(Arc::clone(&metrics));
                hub_loop(&cfg, &rx, &metrics);
                drop(guard);
            })
            .expect("spawn hub thread");
        SimHub {
            tx,
            join: Some(join),
        }
    }

    /// A sender for worker threads.
    #[must_use]
    pub fn sender(&self) -> Sender<HubCommand> {
        self.tx.clone()
    }

    /// Stops the hub and joins it.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(HubCommand::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for SimHub {
    fn drop(&mut self) {
        let _ = self.tx.send(HubCommand::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Counts a panicking unwind on drop, so the acceptance criterion
/// "zero server panics" is a checkable counter rather than a hope.
pub(crate) struct PanicCounter(pub(crate) Arc<ServeMetrics>);

impl Drop for PanicCounter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn hub_loop(cfg: &HubConfig, rx: &Receiver<HubCommand>, metrics: &ServeMetrics) {
    let mut worlds: BTreeMap<(u8, u64), World> = BTreeMap::new();
    loop {
        // Drain all pending commands first: subscription acks must not
        // wait behind a sim tick.
        loop {
            match rx.try_recv() {
                Ok(HubCommand::Shutdown) | Err(TryRecvError::Disconnected) => return,
                Ok(HubCommand::Subscribe(sub)) => subscribe(&mut worlds, cfg, metrics, sub),
                Err(TryRecvError::Empty) => break,
            }
        }

        for world in worlds.values_mut() {
            world.tick(cfg.tick_virtual, cfg.sample_virtual.max(SimDuration::from_micros(1)), metrics);
        }
        // Worlds with no subscribers left cost sim time for nobody.
        worlds.retain(|_, w| !w.subs.is_empty());

        match rx.recv_timeout(cfg.tick_real) {
            Ok(HubCommand::Shutdown) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                return;
            }
            Ok(HubCommand::Subscribe(sub)) => subscribe(&mut worlds, cfg, metrics, sub),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
        }
    }
}

/// Validates a subscription request, registers it on its (possibly new)
/// world, and pushes the SUBACK into the session outbox.
fn subscribe(
    worlds: &mut BTreeMap<(u8, u64), World>,
    cfg: &HubConfig,
    metrics: &ServeMetrics,
    req: SubscribeReq,
) {
    let accepted = admit(worlds, cfg, &req);
    if !accepted {
        metrics.subs_denied.fetch_add(1, Ordering::Relaxed);
    }
    let ack = SessionMsg::SubAck(SubAck {
        query_id: req.query_id,
        accepted,
    })
    .encode();
    let us = u64::try_from(req.received_at.elapsed().as_micros()).unwrap_or(u64::MAX);
    metrics.observe_ack(us);
    let _ = req.outbox.push(ack);
}

fn admit(worlds: &mut BTreeMap<(u8, u64), World>, cfg: &HubConfig, req: &SubscribeReq) -> bool {
    // Only the tracker type exists in the served program.
    if req.type_id != ContextTypeId(0) {
        return false;
    }
    let key = (req.scenario, req.seed);
    if !worlds.contains_key(&key) {
        if worlds.len() >= cfg.max_worlds {
            return false;
        }
        let Some(world) = build_world(req.scenario, req.seed, req.type_id) else {
            return false;
        };
        worlds.insert(key, world);
    }
    let world = worlds.get_mut(&key).expect("world just ensured");
    world.subs.push(Subscription {
        query_id: req.query_id,
        outbox: Arc::clone(&req.outbox),
        seq: 0,
        subscribed_at: req.received_at,
        first_event_recorded: false,
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_sheds_on_overflow_and_never_blocks() {
        let o = Outbox::new(2);
        assert!(o.push(Bytes::from_static(b"a")));
        assert!(o.push(Bytes::from_static(b"b")));
        assert!(!o.is_shed());
        assert!(!o.push(Bytes::from_static(b"c")), "third push overflows");
        assert!(o.is_shed());
        assert_eq!(o.dropped(), 1);
        // Draining does not clear the shed mark: one overflow is terminal.
        assert!(o.pop().is_some());
        assert!(o.is_shed());
    }

    #[test]
    fn hub_acks_and_streams_then_shuts_down() {
        let metrics = Arc::new(ServeMetrics::new());
        let hub = SimHub::spawn(
            HubConfig {
                max_worlds: 2,
                tick_virtual: SimDuration::from_millis(500),
                tick_real: Duration::from_millis(1),
                sample_virtual: SimDuration::from_millis(500),
            },
            Arc::clone(&metrics),
        );
        let outbox = Arc::new(Outbox::new(64));
        hub.sender()
            .send(HubCommand::Subscribe(SubscribeReq {
                query_id: 9,
                scenario: SCENARIO_TESTBED,
                seed: 2,
                type_id: ContextTypeId(0),
                outbox: Arc::clone(&outbox),
                received_at: Instant::now(),
            }))
            .expect("hub alive");
        // First frame out must be the ack; events follow once the tank
        // activates trackers.
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut got_ack = false;
        let mut got_event = false;
        while Instant::now() < deadline && !(got_ack && got_event) {
            match outbox.pop() {
                Some(frame) => match SessionMsg::decode(&frame).expect("hub frames are valid") {
                    SessionMsg::SubAck(a) => {
                        assert!(a.accepted);
                        assert_eq!(a.query_id, 9);
                        assert!(!got_ack, "exactly one ack");
                        got_ack = true;
                    }
                    SessionMsg::Event(e) => {
                        assert!(got_ack, "ack precedes events");
                        assert_eq!(e.query_id, 9);
                        got_event = true;
                    }
                    other => panic!("unexpected hub frame: {other:?}"),
                },
                None => std::thread::sleep(Duration::from_millis(2)),
            }
        }
        assert!(got_ack && got_event, "hub streamed an ack and an event");

        // Unknown scenario and unknown type are denied, not ignored.
        let denied = Arc::new(Outbox::new(4));
        hub.sender()
            .send(HubCommand::Subscribe(SubscribeReq {
                query_id: 10,
                scenario: 99,
                seed: 2,
                type_id: ContextTypeId(0),
                outbox: Arc::clone(&denied),
                received_at: Instant::now(),
            }))
            .expect("hub alive");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(frame) = denied.pop() {
                match SessionMsg::decode(&frame).expect("valid") {
                    SessionMsg::SubAck(a) => {
                        assert!(!a.accepted);
                        break;
                    }
                    other => panic!("unexpected: {other:?}"),
                }
            }
            assert!(Instant::now() < deadline, "denial ack arrived");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(metrics.subs_denied.load(Ordering::Relaxed), 1);
        hub.shutdown();
        assert_eq!(metrics.panics.load(Ordering::Relaxed), 0);
    }
}
