//! Thread-safe serving metrics.
//!
//! The in-sim [`Telemetry`] registry is `Rc`-based and single-threaded by
//! design; the server is not. This module keeps the hot counters in plain
//! atomics (incremented lock-free from any worker) and the latency
//! distributions in mutex-guarded [`LogLinearHistogram`]s, then *exports*
//! a point-in-time [`Telemetry`] snapshot so the rest of the stack (JSON
//! reports, verify stages) reads serving metrics through the exact same
//! interface as simulation metrics.
//!
//! ## Accounting invariant
//!
//! Every connection the acceptor admits ends in exactly one of: a reject
//! counter (`rejected_version`, `rejected_bad_hello`) or a terminal
//! counter (`closes_clean`, `idle_timeouts`, `slow_consumer_sheds`,
//! `protocol_errors`, `disconnects`, `server_closes`). Connections shed at
//! the door land in `rejected_overload`. So once all sessions have
//! drained:
//!
//! ```text
//! connects == rejected_overload + rejected_version + rejected_bad_hello
//!           + terminal_total
//! ```
//!
//! The adversarial battery pins this: no drop is ever silent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use envirotrack_telemetry::{LogLinearHistogram, Telemetry};

/// Shared counters + histograms for one server instance.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// TCP connections observed by the acceptor.
    pub connects: AtomicU64,
    /// Sessions that completed HELLO→ACCEPT.
    pub accepted: AtomicU64,
    /// Connections refused at the door with REJECT(Overloaded).
    pub rejected_overload: AtomicU64,
    /// HELLOs refused with REJECT(VersionUnsupported).
    pub rejected_version: AtomicU64,
    /// HELLOs refused with REJECT(BadHello) (e.g. zero receive budget).
    pub rejected_bad_hello: AtomicU64,
    /// Sessions currently open (gauge).
    pub active_sessions: AtomicU64,
    /// High-water mark of `active_sessions`.
    pub peak_sessions: AtomicU64,

    /// Sessions killed for a framing/state violation (CLOSE(ProtocolError)).
    pub protocol_errors: AtomicU64,
    /// Frames dropped for CRC/codec corruption (subset cause of
    /// `protocol_errors`).
    pub corrupt_frames: AtomicU64,
    /// Frames dropped for an oversized length prefix (subset cause).
    pub oversized_frames: AtomicU64,
    /// Messages valid on the wire but illegal in the session state (subset
    /// cause).
    pub state_violations: AtomicU64,

    /// Sessions closed by the idle reaper (CLOSE(IdleTimeout)).
    pub idle_timeouts: AtomicU64,
    /// Sessions shed for not draining their event queue
    /// (CLOSE(SlowConsumer)).
    pub slow_consumer_sheds: AtomicU64,
    /// Sessions ended by a client CLOSE(Normal).
    pub closes_clean: AtomicU64,
    /// Sessions ended by EOF/reset without a CLOSE frame (half-open,
    /// mid-frame disconnect).
    pub disconnects: AtomicU64,
    /// Sessions ended by server shutdown (CLOSE(Shutdown)).
    pub server_closes: AtomicU64,

    /// Subscription requests received.
    pub subscribes: AtomicU64,
    /// Subscriptions denied by the hub (unknown scenario/type, capacity,
    /// missing capability).
    pub subs_denied: AtomicU64,
    /// Tracking events written to sockets.
    pub events_sent: AtomicU64,
    /// Tracking events dropped at a full per-session outbox (the shed
    /// trigger).
    pub events_dropped: AtomicU64,
    /// PING frames answered.
    pub pings: AtomicU64,
    /// Worker/hub threads that died panicking. Must stay zero.
    pub panics: AtomicU64,

    /// Latency from a SUBSCRIBE arriving off the socket to its SUBACK
    /// entering the session outbox, in microseconds.
    pub query_ack_us: Mutex<LogLinearHistogram>,
    /// Latency from a SUBSCRIBE arriving to the first tracking event for
    /// that query entering the outbox, in microseconds.
    pub first_event_us: Mutex<LogLinearHistogram>,
}

impl ServeMetrics {
    /// A zeroed metrics block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bumps the active-session gauge and its high-water mark.
    pub fn session_opened(&self) {
        let now = self.active_sessions.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_sessions.fetch_max(now, Ordering::Relaxed);
    }

    /// Drops the active-session gauge.
    pub fn session_closed(&self) {
        self.active_sessions.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records a SUBSCRIBE→SUBACK latency.
    pub fn observe_ack(&self, us: u64) {
        self.query_ack_us.lock().expect("metrics lock").record(us);
    }

    /// Records a SUBSCRIBE→first-event latency.
    pub fn observe_first_event(&self, us: u64) {
        self.first_event_us.lock().expect("metrics lock").record(us);
    }

    /// Runs `f` on the query-ack latency histogram.
    pub fn with_ack_histogram<R>(&self, f: impl FnOnce(&LogLinearHistogram) -> R) -> R {
        f(&self.query_ack_us.lock().expect("metrics lock"))
    }

    /// Runs `f` on the subscribe→first-event latency histogram.
    pub fn with_first_event_histogram<R>(&self, f: impl FnOnce(&LogLinearHistogram) -> R) -> R {
        f(&self.first_event_us.lock().expect("metrics lock"))
    }

    /// Sum of all terminal session counters (how every accepted session
    /// eventually ends).
    #[must_use]
    pub fn terminal_total(&self) -> u64 {
        [
            &self.closes_clean,
            &self.idle_timeouts,
            &self.slow_consumer_sheds,
            &self.protocol_errors,
            &self.disconnects,
            &self.server_closes,
        ]
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .sum()
    }

    /// Exports a point-in-time [`Telemetry`] snapshot under `serve.*`
    /// names, so serving metrics flow through the same reporting surface
    /// as simulation metrics.
    #[must_use]
    pub fn snapshot(&self) -> Telemetry {
        let t = Telemetry::new();
        let pairs: [(&str, &AtomicU64); 21] = [
            ("serve.connects", &self.connects),
            ("serve.accepted", &self.accepted),
            ("serve.rejected_overload", &self.rejected_overload),
            ("serve.rejected_version", &self.rejected_version),
            ("serve.rejected_bad_hello", &self.rejected_bad_hello),
            ("serve.peak_sessions", &self.peak_sessions),
            ("serve.protocol_errors", &self.protocol_errors),
            ("serve.corrupt_frames", &self.corrupt_frames),
            ("serve.oversized_frames", &self.oversized_frames),
            ("serve.state_violations", &self.state_violations),
            ("serve.idle_timeouts", &self.idle_timeouts),
            ("serve.slow_consumer_sheds", &self.slow_consumer_sheds),
            ("serve.closes_clean", &self.closes_clean),
            ("serve.disconnects", &self.disconnects),
            ("serve.server_closes", &self.server_closes),
            ("serve.subscribes", &self.subscribes),
            ("serve.subs_denied", &self.subs_denied),
            ("serve.events_sent", &self.events_sent),
            ("serve.events_dropped", &self.events_dropped),
            ("serve.pings", &self.pings),
            ("serve.panics", &self.panics),
        ];
        for (name, cell) in pairs {
            t.add(name, cell.load(Ordering::Relaxed));
        }
        t.add("serve.terminal_total", self.terminal_total());
        #[allow(clippy::cast_precision_loss)]
        t.set_gauge(
            "serve.active_sessions",
            self.active_sessions.load(Ordering::Relaxed) as f64,
        );
        for (name, hist) in [
            ("serve.query_ack_us", &self.query_ack_us),
            ("serve.first_event_us", &self.first_event_us),
        ] {
            let h = hist.lock().expect("metrics lock");
            for (low, count) in h.iter() {
                for _ in 0..count {
                    // Re-recording bucket lows preserves counts and bucket
                    // placement exactly (bucket_low is a fixed point of
                    // bucket_index).
                    t.observe(name, low);
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_tracks_peak() {
        let m = ServeMetrics::new();
        m.session_opened();
        m.session_opened();
        m.session_closed();
        m.session_opened();
        assert_eq!(m.active_sessions.load(Ordering::Relaxed), 2);
        assert_eq!(m.peak_sessions.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn snapshot_exports_counters_and_histograms() {
        let m = ServeMetrics::new();
        m.connects.fetch_add(3, Ordering::Relaxed);
        m.closes_clean.fetch_add(2, Ordering::Relaxed);
        m.disconnects.fetch_add(1, Ordering::Relaxed);
        m.observe_ack(100);
        m.observe_ack(100);
        m.observe_ack(10_000);
        let t = m.snapshot();
        assert_eq!(t.counter("serve.connects"), 3);
        assert_eq!(t.counter("serve.terminal_total"), 3);
        t.with_registry(|r| {
            let h = r.histogram("serve.query_ack_us").expect("histogram");
            assert_eq!(h.count(), 3);
            assert!(h.quantile(0.5) <= 100 && h.quantile(0.5) > 0);
            assert!(h.quantile(0.99) >= 1_000);
        });
    }
}
