//! The TCP session server: acceptor + pooled socket workers.
//!
//! ## Threading model
//!
//! * **Acceptor** — one thread in blocking `accept()`. Its only decision
//!   is overload shedding: past `max_sessions` a connection is answered
//!   with REJECT(Overloaded) and closed *before* it costs a worker
//!   anything. Admitted sockets go non-blocking and round-robin onto a
//!   worker.
//! * **Workers** — `workers` threads, each multiplexing many sessions
//!   with a poll loop (read → frame → state machine → drain outbox →
//!   flush). No thread ever blocks on one client's socket, so thousands
//!   of sessions cost `workers` threads, not thousands.
//! * **Hub** — one thread owning every simulation (see
//!   [`crate::worlds`]).
//!
//! ## Backpressure policy
//!
//! Three bounded stages, each with a defined overflow behaviour:
//!
//! 1. **Outbox** (hub → session): at most `send_budget` frames; overflow
//!    marks the session shed → CLOSE(SlowConsumer).
//! 2. **Pending write** (session → socket): at most
//!    [`MAX_PENDING_WRITE`] bytes; while full, the outbox is not drained
//!    (pressure propagates backwards to stage 1 instead of growing an
//!    unbounded buffer).
//! 3. **Acceptor** (network → server): at most `max_sessions` concurrent
//!    sessions; overflow is shed with REJECT before admission.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use envirotrack_core::wire::session::{
    Accept, Close, CloseReason, Reject, RejectReason, SessionMsg, SubAck, CAP_ALL,
    CAP_SCENARIO_RUN, SESSION_VERSION,
};
use envirotrack_core::wire::DecodeError;

use crate::frame::{FrameError, FrameReader};
use crate::metrics::ServeMetrics;
use crate::worlds::{HubCommand, HubConfig, Outbox, PanicCounter, SimHub, SubscribeReq};

/// Per-session cap on bytes buffered between outbox and socket. Kept
/// small so kernel-buffer slack cannot hide a stalled consumer: once the
/// socket stops draining, pressure reaches the outbox within one budget.
pub const MAX_PENDING_WRITE: usize = 16 * 1024;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub bind: SocketAddr,
    /// Socket worker threads.
    pub workers: usize,
    /// Concurrent session cap; excess connects get REJECT(Overloaded).
    pub max_sessions: usize,
    /// Frames the server will queue per session before shedding it.
    pub send_budget: u32,
    /// A session with no inbound traffic and no event flow for this long
    /// gets CLOSE(IdleTimeout).
    pub idle_timeout: Duration,
    /// Grace period for flushing a final CLOSE before dropping a session.
    pub close_grace: Duration,
    /// Simulation hub knobs.
    pub hub: HubConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 4,
            max_sessions: 2048,
            send_budget: 256,
            idle_timeout: Duration::from_secs(10),
            close_grace: Duration::from_millis(250),
            hub: HubConfig::default(),
        }
    }
}

enum SessionState {
    /// Waiting for HELLO.
    AwaitHello,
    /// Negotiated and serving.
    Open,
    /// Final frames queued; flush then drop. Holds why, for accounting at
    /// actual teardown.
    Closing { deadline: Instant },
}

struct Session {
    stream: TcpStream,
    reader: FrameReader,
    state: SessionState,
    pending_write: Vec<u8>,
    outbox: Arc<Outbox>,
    caps: u32,
    last_activity: Instant,
    /// Set when this session was already counted in a terminal counter.
    accounted: bool,
    /// Whether HELLO→ACCEPT completed (drives the active-session gauge).
    accepted: bool,
}

impl Session {
    fn new(stream: TcpStream, budget: usize) -> Session {
        Session {
            stream,
            reader: FrameReader::new(),
            state: SessionState::AwaitHello,
            pending_write: Vec::new(),
            outbox: Arc::new(Outbox::new(budget)),
            caps: 0,
            last_activity: Instant::now(),
            accounted: false,
            accepted: false,
        }
    }

    fn queue(&mut self, msg: &SessionMsg) {
        self.pending_write.extend_from_slice(&msg.encode());
    }

    /// Queues a CLOSE and enters the flush-then-drop state.
    fn begin_close(&mut self, reason: CloseReason, grace: Duration) {
        self.queue(&SessionMsg::Close(Close { reason }));
        self.outbox.close();
        self.state = SessionState::Closing {
            deadline: Instant::now() + grace,
        };
    }
}

/// A running server; dropping (or calling [`Server::shutdown`]) stops it.
pub struct Server {
    addr: SocketAddr,
    metrics: Arc<ServeMetrics>,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    hub: Option<SimHub>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

impl Server {
    /// Binds, spawns the hub + workers + acceptor, and returns.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(cfg.bind)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::new());
        let stop = Arc::new(AtomicBool::new(false));
        let hub = SimHub::spawn(cfg.hub.clone(), Arc::clone(&metrics));

        let mut workers = Vec::new();
        let mut worker_txs: Vec<Sender<TcpStream>> = Vec::new();
        for i in 0..cfg.workers.max(1) {
            let (tx, rx) = std::sync::mpsc::channel::<TcpStream>();
            worker_txs.push(tx);
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            let hub_tx = hub.sender();
            let cfg = cfg.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || {
                        let guard = PanicCounter(Arc::clone(&metrics));
                        worker_loop(&cfg, &rx, &hub_tx, &metrics, &stop);
                        drop(guard);
                    })
                    .expect("spawn worker"),
            );
        }

        let acceptor = {
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || {
                    let guard = PanicCounter(Arc::clone(&metrics));
                    acceptor_loop(&listener, &worker_txs, &metrics, &stop, cfg.max_sessions);
                    drop(guard);
                })
                .expect("spawn acceptor")
        };

        Ok(Server {
            addr,
            metrics,
            stop,
            acceptor: Some(acceptor),
            workers,
            hub: Some(hub),
        })
    }

    /// The bound address (with the OS-assigned port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics block.
    #[must_use]
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Stops every thread and joins them.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(h) = self.hub.take() {
            h.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop_threads();
        }
    }
}

fn acceptor_loop(
    listener: &TcpListener,
    workers: &[Sender<TcpStream>],
    metrics: &ServeMetrics,
    stop: &AtomicBool,
    max_sessions: usize,
) {
    let mut next = 0usize;
    loop {
        let Ok((mut stream, _)) = listener.accept() else {
            if stop.load(Ordering::Acquire) {
                return;
            }
            continue;
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        metrics.connects.fetch_add(1, Ordering::Relaxed);
        let active = metrics.active_sessions.load(Ordering::Relaxed);
        if active >= max_sessions as u64 {
            // Overload shedding at the door: a synchronous best-effort
            // REJECT, then drop. The write is tiny and the peer just
            // connected, so blocking here is bounded in practice.
            metrics.rejected_overload.fetch_add(1, Ordering::Relaxed);
            let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
            let _ = stream.write_all(
                &SessionMsg::Reject(Reject {
                    reason: RejectReason::Overloaded,
                })
                .encode(),
            );
            continue;
        }
        if stream.set_nonblocking(true).is_err() {
            metrics.disconnects.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let _ = stream.set_nodelay(true);
        // Round-robin across workers.
        let w = next % workers.len();
        next += 1;
        if workers[w].send(stream).is_err() {
            return; // workers only die at shutdown
        }
    }
}

fn worker_loop(
    cfg: &ServerConfig,
    incoming: &Receiver<TcpStream>,
    hub_tx: &Sender<HubCommand>,
    metrics: &ServeMetrics,
    stop: &AtomicBool,
) {
    let mut sessions: Vec<Session> = Vec::new();
    let session_counter = AtomicU64::new(1);
    loop {
        if stop.load(Ordering::Acquire) {
            let bye = SessionMsg::Close(Close {
                reason: CloseReason::Shutdown,
            })
            .encode();
            for mut s in sessions.drain(..) {
                finish(&mut s, metrics, &metrics.server_closes);
                let _ = s.stream.write_all(&bye);
            }
            return;
        }

        let mut busy = false;
        while let Ok(stream) = incoming.try_recv() {
            sessions.push(Session::new(stream, cfg.send_budget as usize));
            busy = true;
        }

        let mut i = 0;
        while i < sessions.len() {
            let done = step_session(
                &mut sessions[i],
                cfg,
                hub_tx,
                metrics,
                &session_counter,
                &mut busy,
            );
            if done {
                let s = sessions.swap_remove(i);
                s.outbox.close();
            } else {
                i += 1;
            }
        }

        if !busy {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

/// Accounts a session's teardown exactly once.
fn finish(s: &mut Session, metrics: &ServeMetrics, counter: &AtomicU64) {
    if !s.accounted {
        s.accounted = true;
        counter.fetch_add(1, Ordering::Relaxed);
        if s.accepted {
            metrics.session_closed();
        }
    }
}

/// One poll-loop pass over one session. Returns `true` when the session
/// should be dropped.
fn step_session(
    s: &mut Session,
    cfg: &ServerConfig,
    hub_tx: &Sender<HubCommand>,
    metrics: &ServeMetrics,
    session_counter: &AtomicU64,
    busy: &mut bool,
) -> bool {
    // 1. Read whatever arrived. EOF/reset is noted but NOT acted on yet:
    // bytes already buffered may hold a final CLOSE frame that deserves
    // clean-close accounting, so frames are processed first.
    let mut eof = false;
    let mut chunk = [0u8; 4096];
    loop {
        match s.stream.read(&mut chunk) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                s.reader.extend(&chunk[..n]);
                s.last_activity = Instant::now();
                *busy = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                eof = true;
                break;
            }
        }
    }

    // 2. Carve frames and run the state machine (not while closing).
    if !matches!(s.state, SessionState::Closing { .. }) {
        loop {
            match s.reader.next_frame() {
                Ok(None) => break,
                Ok(Some(msg)) => {
                    *busy = true;
                    if handle_message(s, msg, cfg, hub_tx, metrics, session_counter) {
                        break;
                    }
                }
                Err(err) => {
                    *busy = true;
                    match err {
                        FrameError::Oversized { .. } => {
                            metrics.oversized_frames.fetch_add(1, Ordering::Relaxed);
                        }
                        FrameError::Codec(DecodeError::UnknownTag { .. }) => {
                            // Unknown tags are a protocol error, not
                            // corruption: the CRC checked out.
                        }
                        FrameError::Codec(_) => {
                            metrics.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    finish(s, metrics, &metrics.protocol_errors);
                    s.begin_close(CloseReason::ProtocolError, cfg.close_grace);
                    break;
                }
            }
        }
    }

    // 3. Drain the outbox into the pending-write buffer (stage-2 bound).
    if matches!(s.state, SessionState::Open) {
        while s.pending_write.len() < MAX_PENDING_WRITE {
            match s.outbox.pop() {
                Some(frame) => {
                    s.pending_write.extend_from_slice(&frame);
                    s.last_activity = Instant::now();
                    *busy = true;
                }
                None => break,
            }
        }
        if s.outbox.is_shed() {
            metrics.slow_consumer_sheds.fetch_add(1, Ordering::Relaxed);
            finish_shed(s, metrics);
            s.begin_close(CloseReason::SlowConsumer, cfg.close_grace);
        }
    }

    // 4. Flush.
    while !s.pending_write.is_empty() {
        match s.stream.write(&s.pending_write) {
            Ok(0) => {
                finish(s, metrics, &metrics.disconnects);
                return true;
            }
            Ok(n) => {
                s.pending_write.drain(..n);
                *busy = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                finish(s, metrics, &metrics.disconnects);
                return true;
            }
        }
    }

    // 5. The peer is gone: account the teardown (a no-op if a processed
    // CLOSE or protocol error already did) and drop.
    if eof {
        finish(s, metrics, &metrics.disconnects);
        return true;
    }

    // 6. Lifecycle timers.
    match s.state {
        SessionState::Closing { deadline } => {
            s.pending_write.is_empty() || Instant::now() >= deadline
        }
        _ => {
            if s.last_activity.elapsed() > cfg.idle_timeout {
                finish(s, metrics, &metrics.idle_timeouts);
                s.begin_close(CloseReason::IdleTimeout, cfg.close_grace);
            }
            false
        }
    }
}

/// Marks a shed session terminal (the shed counter itself was already
/// bumped by the caller; this wires the gauge + accounted flag).
fn finish_shed(s: &mut Session, metrics: &ServeMetrics) {
    if !s.accounted {
        s.accounted = true;
        if s.accepted {
            metrics.session_closed();
        }
    }
}

/// Applies one decoded message to the session state machine. Returns
/// `true` when the session entered `Closing`.
fn handle_message(
    s: &mut Session,
    msg: SessionMsg,
    cfg: &ServerConfig,
    hub_tx: &Sender<HubCommand>,
    metrics: &ServeMetrics,
    session_counter: &AtomicU64,
) -> bool {
    let awaiting = matches!(s.state, SessionState::AwaitHello);
    match msg {
        SessionMsg::Hello(h) if awaiting => {
            if h.version != SESSION_VERSION {
                metrics.rejected_version.fetch_add(1, Ordering::Relaxed);
                s.queue(&SessionMsg::Reject(Reject {
                    reason: RejectReason::VersionUnsupported,
                }));
                finish_rejected(s);
                s.begin_close(CloseReason::Normal, cfg.close_grace);
                return true;
            }
            if h.recv_budget == 0 {
                metrics.rejected_bad_hello.fetch_add(1, Ordering::Relaxed);
                s.queue(&SessionMsg::Reject(Reject {
                    reason: RejectReason::BadHello,
                }));
                finish_rejected(s);
                s.begin_close(CloseReason::Normal, cfg.close_grace);
                return true;
            }
            let caps = h.caps & CAP_ALL;
            let budget = h.recv_budget.min(cfg.send_budget);
            s.caps = caps;
            s.outbox = Arc::new(Outbox::new(budget as usize));
            s.accepted = true;
            metrics.accepted.fetch_add(1, Ordering::Relaxed);
            metrics.session_opened();
            s.queue(&SessionMsg::Accept(Accept {
                session: session_counter.fetch_add(1, Ordering::Relaxed),
                version: SESSION_VERSION,
                caps,
                send_budget: budget,
            }));
            s.state = SessionState::Open;
            false
        }
        SessionMsg::Subscribe(sub) if !awaiting => {
            metrics.subscribes.fetch_add(1, Ordering::Relaxed);
            if sub.scenario != crate::worlds::SCENARIO_TESTBED && s.caps & CAP_SCENARIO_RUN == 0 {
                // Capability not negotiated: deny locally, same shape as a
                // hub denial.
                metrics.subs_denied.fetch_add(1, Ordering::Relaxed);
                s.queue(&SessionMsg::SubAck(SubAck {
                    query_id: sub.query_id,
                    accepted: false,
                }));
                return false;
            }
            let _ = hub_tx.send(HubCommand::Subscribe(SubscribeReq {
                query_id: sub.query_id,
                scenario: sub.scenario,
                seed: sub.seed,
                type_id: sub.type_id,
                outbox: Arc::clone(&s.outbox),
                received_at: Instant::now(),
            }));
            false
        }
        SessionMsg::Ping { nonce } if !awaiting => {
            metrics.pings.fetch_add(1, Ordering::Relaxed);
            s.queue(&SessionMsg::Pong { nonce });
            false
        }
        SessionMsg::Close(_) => {
            finish(s, metrics, &metrics.closes_clean);
            s.begin_close(CloseReason::Normal, cfg.close_grace);
            true
        }
        // Everything else — HELLO twice, server-only messages from a
        // client, traffic before HELLO — is a state violation.
        _ => {
            metrics.state_violations.fetch_add(1, Ordering::Relaxed);
            finish(s, metrics, &metrics.protocol_errors);
            s.begin_close(CloseReason::ProtocolError, cfg.close_grace);
            true
        }
    }
}

/// A REJECTed handshake never opened a session; it still ends in exactly
/// one terminal counter (the reject counters double as terminal for
/// never-accepted sessions), so mark accounted without a terminal bump.
fn finish_rejected(s: &mut Session) {
    s.accounted = true;
}
