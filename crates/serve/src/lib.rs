//! Tracking as a *service*: a TCP session server in front of the
//! simulation.
//!
//! EnviroTrack's promise (PAPER.md §2) is that tracking is a service
//! abstraction over the sensor field. Everything below this crate drives
//! the field in-process; this crate puts a network front door on it — a
//! std-only (no async runtime) TCP server speaking a length-prefixed
//! binary session protocol (`core::wire::session`): HELLO/ACCEPT/REJECT
//! negotiation, SUBSCRIBE/SUBACK query registration, streamed EVENT
//! frames, PING/PONG keep-alive, CLOSE with reason codes.
//!
//! The crate splits along the natural seams:
//!
//! * [`frame`] — incremental frame extraction from the byte stream.
//! * [`metrics`] — thread-safe counters/histograms, exported as
//!   [`envirotrack_telemetry::Telemetry`] snapshots.
//! * [`worlds`] — the single-threaded simulation hub and the bounded
//!   outboxes that carry events to sessions.
//! * [`server`] — the acceptor + pooled worker threads and the session
//!   state machine.
//! * [`client`] — a blocking client for tests and probes.
//!
//! See DESIGN.md §16 for the threading model, the three-stage
//! backpressure policy, and the determinism boundary.

pub mod client;
pub mod frame;
pub mod metrics;
pub mod server;
pub mod worlds;

pub use client::{Client, Handshake};
pub use frame::{FrameError, FrameReader, MAX_FRAME_BYTES};
pub use metrics::ServeMetrics;
pub use server::{Server, ServerConfig, MAX_PENDING_WRITE};
pub use worlds::{HubConfig, Outbox, SCENARIO_TESTBED, SCENARIO_WIDE};
