//! Incremental session-frame extraction from a TCP byte stream.
//!
//! TCP delivers bytes, not frames: a read may hold half a frame, three
//! frames, or one byte of a length prefix (the slow-loris case). The
//! [`FrameReader`] buffers whatever arrives and yields complete
//! [`SessionMsg`]s as soon as their last byte lands, distinguishing
//! *"need more bytes"* (keep the connection) from *fatal* framing errors
//! (corrupt varint, oversized declaration, bad CRC — the stream can never
//! resynchronise, so the session must die).

use envirotrack_core::wire::session::SessionMsg;
use envirotrack_core::wire::varint::{get_uvarint, uvarint_len};
use envirotrack_core::wire::{crc, DecodeError};

/// Upper bound on a declared frame body. The largest legitimate session
/// message is a few dozen bytes; anything claiming more is an attack or a
/// desynchronised stream, and buffering it would let one client pin 2^64
/// bytes of memory with a 10-byte prefix.
pub const MAX_FRAME_BYTES: u64 = 64 * 1024;

/// Why a stream is beyond recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame was malformed: bad varint prefix, CRC mismatch, unknown
    /// tag, non-canonical field — anything [`SessionMsg::decode`] rejects.
    Codec(DecodeError),
    /// The length prefix declared a body larger than [`MAX_FRAME_BYTES`].
    Oversized {
        /// The declared body length.
        declared: u64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Codec(e) => write!(f, "codec error: {e}"),
            FrameError::Oversized { declared } => {
                write!(f, "oversized frame: declared {declared} bytes")
            }
        }
    }
}

/// Buffers stream bytes and carves them into verified session frames.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A fresh, empty reader.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly received stream bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete frame, if one has fully arrived.
    ///
    /// * `Ok(Some(msg))` — a frame was verified and consumed.
    /// * `Ok(None)` — the buffer holds only a partial frame; read more.
    /// * `Err(_)` — the stream is corrupt; close the session. The reader
    ///   is left as-is (no resynchronisation is attempted — a CRC'd,
    ///   length-prefixed stream has no safe resync point).
    pub fn next_frame(&mut self) -> Result<Option<SessionMsg>, FrameError> {
        let mut cursor: &[u8] = &self.buf;
        let body_len = match get_uvarint(&mut cursor) {
            Ok(n) => n,
            // Mid-varint end of buffer: wait for more bytes.
            Err(DecodeError::Truncated) => return Ok(None),
            Err(e) => return Err(FrameError::Codec(e)),
        };
        if body_len > MAX_FRAME_BYTES {
            return Err(FrameError::Oversized { declared: body_len });
        }
        // body_len <= 64 KiB, so every cast below is lossless.
        #[allow(clippy::cast_possible_truncation)]
        let total = uvarint_len(body_len) + body_len as usize + crc::TRAILER_BYTES;
        if self.buf.len() < total {
            return Ok(None);
        }
        let msg = SessionMsg::decode(&self.buf[..total]).map_err(FrameError::Codec)?;
        self.buf.drain(..total);
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use envirotrack_core::wire::session::{Close, CloseReason};

    fn ping(nonce: u64) -> SessionMsg {
        SessionMsg::Ping { nonce }
    }

    #[test]
    fn reassembles_frames_from_arbitrary_chunking() {
        let msgs = vec![
            ping(1),
            ping(u64::MAX),
            SessionMsg::Close(Close {
                reason: CloseReason::Normal,
            }),
        ];
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&m.encode());
        }
        // Feed the byte stream one byte at a time (worst-case slow loris).
        let mut r = FrameReader::new();
        let mut out = Vec::new();
        for b in &stream {
            r.extend(std::slice::from_ref(b));
            while let Some(m) = r.next_frame().expect("valid stream") {
                out.push(m);
            }
        }
        assert_eq!(out, msgs);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let bytes = ping(7).encode();
        let mut r = FrameReader::new();
        for cut in 0..bytes.len() {
            r.extend(&bytes[cut..=cut]);
            if cut + 1 < bytes.len() {
                assert_eq!(r.next_frame(), Ok(None), "cut {cut}");
            }
        }
        assert_eq!(r.next_frame(), Ok(Some(ping(7))));
    }

    #[test]
    fn oversized_declaration_is_fatal_before_buffering() {
        let mut r = FrameReader::new();
        // uvarint(2^20) followed by nothing: rejected on the prefix alone,
        // without waiting for a megabyte that will never arrive.
        let mut buf = bytes::BytesMut::new();
        envirotrack_core::wire::varint::put_uvarint(&mut buf, 1 << 20);
        r.extend(&buf.freeze());
        assert_eq!(
            r.next_frame(),
            Err(FrameError::Oversized { declared: 1 << 20 })
        );
    }

    #[test]
    fn corrupt_bytes_are_fatal() {
        let mut bytes = ping(7).encode().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // break the CRC trailer
        let mut r = FrameReader::new();
        r.extend(&bytes);
        assert!(matches!(
            r.next_frame(),
            Err(FrameError::Codec(DecodeError::CrcMismatch { .. }))
        ));
        // A corrupt varint prefix is also fatal, not "wait for more".
        let mut r = FrameReader::new();
        r.extend(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f]);
        assert!(matches!(
            r.next_frame(),
            Err(FrameError::Codec(DecodeError::VarintOverflow))
        ));
    }
}
