//! A small blocking client for tests and the storm generator.
//!
//! Deliberately simple: one socket, one [`FrameReader`], synchronous
//! send/recv with a read timeout. The load generator drives thousands of
//! *non-blocking* sockets itself; this type is for correctness tests and
//! single-session probes where blocking reads keep the assertions linear.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use envirotrack_core::wire::session::{
    Accept, Hello, Reject, SessionMsg, SubAck, Subscribe, TrackEvent, CAP_ALL, SESSION_VERSION,
};

use crate::frame::FrameReader;

/// A blocking session client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
}

/// What the server said to a HELLO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Handshake {
    /// Session established.
    Accepted(Accept),
    /// Refused, with the server's reason.
    Rejected(Reject),
}

impl Client {
    /// Connects with a read timeout (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: SocketAddr, read_timeout: Option<Duration>) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(read_timeout)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            reader: FrameReader::new(),
        })
    }

    /// Sends one message.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send(&mut self, msg: &SessionMsg) -> std::io::Result<()> {
        self.stream.write_all(&msg.encode())
    }

    /// Sends raw bytes, bypassing the codec (for adversarial tests).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Receives the next frame, blocking up to the read timeout.
    ///
    /// # Errors
    ///
    /// `TimedOut`/`WouldBlock` when the timeout lapses, `UnexpectedEof` on
    /// server close, `InvalidData` on a corrupt frame.
    pub fn recv(&mut self) -> std::io::Result<SessionMsg> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.reader.next_frame() {
                Ok(Some(msg)) => return Ok(msg),
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(ErrorKind::InvalidData, e.to_string()))
                }
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(n) => self.reader.extend(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Performs the HELLO handshake at the current protocol version.
    ///
    /// # Errors
    ///
    /// Socket errors, plus `InvalidData` if the server answers with
    /// anything other than ACCEPT or REJECT.
    pub fn hello(&mut self, caps: u32, recv_budget: u32) -> std::io::Result<Handshake> {
        self.hello_version(SESSION_VERSION, caps, recv_budget)
    }

    /// Performs a HELLO claiming an arbitrary protocol version.
    ///
    /// # Errors
    ///
    /// See [`Client::hello`].
    pub fn hello_version(
        &mut self,
        version: u16,
        caps: u32,
        recv_budget: u32,
    ) -> std::io::Result<Handshake> {
        self.send(&SessionMsg::Hello(Hello {
            version,
            caps,
            recv_budget,
        }))?;
        match self.recv()? {
            SessionMsg::Accept(a) => Ok(Handshake::Accepted(a)),
            SessionMsg::Reject(r) => Ok(Handshake::Rejected(r)),
            other => Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("expected ACCEPT/REJECT, got {other:?}"),
            )),
        }
    }

    /// Connects, handshakes with full capabilities, and returns the
    /// accepted session.
    ///
    /// # Errors
    ///
    /// Socket errors, plus `ConnectionRefused` if the server REJECTs.
    pub fn open(addr: SocketAddr, read_timeout: Option<Duration>) -> std::io::Result<Client> {
        let mut c = Client::connect(addr, read_timeout)?;
        match c.hello(CAP_ALL, 1024)? {
            Handshake::Accepted(_) => Ok(c),
            Handshake::Rejected(r) => Err(std::io::Error::new(
                ErrorKind::ConnectionRefused,
                format!("rejected: {:?}", r.reason),
            )),
        }
    }

    /// Registers a subscription and waits for its SUBACK, returning it.
    /// Events already streaming for other queries are skipped (they keep
    /// flowing afterwards).
    ///
    /// # Errors
    ///
    /// Socket errors, plus `InvalidData` on a non-ack control frame.
    pub fn subscribe(&mut self, sub: Subscribe) -> std::io::Result<SubAck> {
        let want = sub.query_id;
        self.send(&SessionMsg::Subscribe(sub))?;
        loop {
            match self.recv()? {
                SessionMsg::SubAck(a) if a.query_id == want => return Ok(a),
                SessionMsg::Event(_) | SessionMsg::SubAck(_) => {}
                other => {
                    return Err(std::io::Error::new(
                        ErrorKind::InvalidData,
                        format!("expected SUBACK, got {other:?}"),
                    ))
                }
            }
        }
    }

    /// Waits for the next tracking event, skipping other frame kinds.
    ///
    /// # Errors
    ///
    /// Socket errors; `UnexpectedEof` if the server closes first.
    pub fn next_event(&mut self) -> std::io::Result<TrackEvent> {
        loop {
            match self.recv()? {
                SessionMsg::Event(e) => return Ok(e),
                SessionMsg::Close(c) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        format!("server closed: {:?}", c.reason),
                    ))
                }
                _ => {}
            }
        }
    }

    /// The underlying stream (for timeout tweaks and shutdown tricks).
    #[must_use]
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}
