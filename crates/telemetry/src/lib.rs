//! Zero-dependency telemetry for the EnviroTrack simulator.
//!
//! Three instruments, all deterministic under a fixed event order:
//!
//! * **Counters and gauges** — named monotone totals and last-written
//!   values, stored in [`BTreeMap`]s so iteration order is stable.
//! * **Log-linear histograms** — each power-of-two octave is split into
//!   four linear sub-buckets, giving ~12% relative resolution over the
//!   full `u64` range with a handful of sparse buckets. Used for latency
//!   (microseconds) and small-count distributions alike.
//! * **A bounded trace stream** — structured [`TraceEvent`]s (timestamp,
//!   node, context label, kind, detail), kept in a drop-oldest ring so a
//!   long run cannot grow without bound, plus **spans** keyed by
//!   `(node, id)` for measuring request→response latency.
//!
//! Trace labels are `Rc<str>`: hot paths that emit many events for the
//! same context label format the label once, cache the `Rc` in an
//! [`Interner`], and hand it to [`Telemetry::trace_shared`] — appending an
//! event is then a reference-count bump instead of a format + allocation.
//! Event kinds are `&'static str` (they are always literals), so they
//! never allocate at all.
//!
//! The [`Telemetry`] handle is a cheap `Rc<RefCell<..>>` clone, mirroring
//! the single-threaded simulation kernel it instruments: every layer of
//! the stack (kernel, radio medium, transport, directory, group
//! management) holds the same registry and the recording order is exactly
//! the deterministic event order, so identical seeds produce
//! byte-identical exports.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// Default bound on the trace ring: old events are dropped (and counted)
/// past this many.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time, microseconds since the epoch.
    pub at_us: u64,
    /// The node the event happened on.
    pub node: u32,
    /// The context label the event concerns (display form, e.g.
    /// `type0@n3#1`), or `"-"` for label-free events. Shared, so events
    /// for the same label alias one allocation.
    pub label: Rc<str>,
    /// Event kind, dot-namespaced (`group.hb`, `mtp.retx`, ...).
    pub kind: &'static str,
    /// Free-form detail, already formatted.
    pub detail: String,
}

impl TraceEvent {
    /// A stable single-line rendering, used in violation attachments and
    /// the smoke digest.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}us n{} [{}] {} {}",
            self.at_us, self.node, self.label, self.kind, self.detail
        )
    }
}

/// A log-linear histogram: 4 linear sub-buckets per power-of-two octave.
///
/// Buckets are sparse (only touched ones are stored) and iterate in
/// ascending value order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogLinearHistogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl LogLinearHistogram {
    /// The bucket index recording `v`.
    #[must_use]
    pub fn bucket_index(v: u64) -> u32 {
        if v < 4 {
            return u32::try_from(v).unwrap_or(3);
        }
        let octave = 63 - v.leading_zeros();
        let sub = u32::try_from((v >> (octave - 2)) & 3).unwrap_or(3);
        (octave - 1) * 4 + sub
    }

    /// The smallest value landing in bucket `index` (inverse of
    /// [`Self::bucket_index`]).
    #[must_use]
    pub fn bucket_low(index: u32) -> u64 {
        if index < 4 {
            return u64::from(index);
        }
        let octave = index / 4 + 1;
        let sub = u64::from(index % 4);
        (1u64 << octave) + (sub << (octave - 2))
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        *self.buckets.entry(Self::bucket_index(v)).or_insert(0) += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest observation seen (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observation, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // Precision loss is acceptable for a summary statistic.
        #[allow(clippy::cast_precision_loss)]
        {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets in ascending value order, as
    /// `(bucket lower bound, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(i, c)| (Self::bucket_low(*i), *c))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the lower bound of the bucket
    /// where the cumulative count first reaches `ceil(q * count)`.
    ///
    /// Resolution is the bucket width (~12% relative), which is plenty for
    /// latency percentiles; returns 0 when empty. `q` outside `[0, 1]` is
    /// clamped.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // count is bounded by observations recorded one at a time, so the
        // f64 round-trip is exact far beyond any realistic run length.
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (low, c) in self.iter() {
            seen += c;
            if seen >= rank {
                return low;
            }
        }
        self.max
    }
}

/// A pre-resolved counter: a shared cell registered under a name in the
/// [`Registry`], handed out by [`Telemetry::counter_handle`].
///
/// Incrementing through a handle skips the name formatting, the registry
/// borrow, and the map lookup that [`Telemetry::incr`] pays — the hot-path
/// cost is a single unconditional `Cell` read-modify-write. Exports read
/// the same cell, so a handle and its name always agree.
#[derive(Debug, Clone)]
pub struct CounterHandle {
    cell: Rc<Cell<u64>>,
}

impl CounterHandle {
    /// Adds `n` (saturating).
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.set(self.cell.get().saturating_add(n));
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.get()
    }
}

/// A tiny numeric-keyed string intern pool.
///
/// Hot paths derive a stable `u128` key from a cheap `Copy` identifier
/// (e.g. a packed `ContextLabel`) and look the display string up here
/// instead of re-formatting it per event; the first use pays the format,
/// every later use is a `BTreeMap<u128, _>` probe — integer comparisons,
/// no string hashing or allocation. Clones share the pool.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Rc<RefCell<BTreeMap<u128, Rc<str>>>>,
}

impl Interner {
    /// A fresh, empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared string for `key`, formatting it with `make` on first use.
    pub fn get_or_insert_with(&self, key: u128, make: impl FnOnce() -> String) -> Rc<str> {
        let mut strings = self.strings.borrow_mut();
        Rc::clone(
            strings
                .entry(key)
                .or_insert_with(|| Rc::from(make().as_str())),
        )
    }

    /// Number of interned strings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.strings.borrow().len()
    }

    /// Whether the pool is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.strings.borrow().is_empty()
    }
}

/// The shared metric + trace store. Accessed through [`Telemetry`].
#[derive(Debug)]
pub struct Registry {
    counters: BTreeMap<String, Rc<Cell<u64>>>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogLinearHistogram>,
    trace: VecDeque<TraceEvent>,
    trace_capacity: usize,
    trace_dropped: u64,
    spans: BTreeMap<(u32, u64), u64>,
}

impl Registry {
    fn new(trace_capacity: usize) -> Self {
        Registry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            trace: VecDeque::new(),
            trace_capacity: trace_capacity.max(1),
            trace_dropped: 0,
            spans: BTreeMap::new(),
        }
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), v.get()))
    }

    /// Gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LogLinearHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The retained trace events, oldest first.
    pub fn trace_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.trace.iter()
    }

    /// How many trace events were dropped by the ring bound.
    #[must_use]
    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped
    }

    /// A counter's current value (0 when never written).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |c| c.get())
    }

    /// A histogram by name, if any observation was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&LogLinearHistogram> {
        self.histograms.get(name)
    }
}

/// The cloneable telemetry handle plumbed through every layer.
///
/// All methods take `&self`: interior mutability keeps the call sites
/// (many of which only hold shared borrows) unintrusive.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Rc<RefCell<Registry>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// A fresh registry with the default trace bound.
    #[must_use]
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A fresh registry keeping at most `capacity` trace events.
    #[must_use]
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Telemetry {
            inner: Rc::new(RefCell::new(Registry::new(capacity))),
        }
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, name: &str, n: u64) {
        let mut r = self.inner.borrow_mut();
        match r.counters.get(name) {
            Some(c) => c.set(c.get().saturating_add(n)),
            None => {
                r.counters.insert(name.to_owned(), Rc::new(Cell::new(n)));
            }
        }
    }

    /// Resolves (registering if absent) the named counter into a
    /// [`CounterHandle`] for repeated hot-path increments.
    #[must_use]
    pub fn counter_handle(&self, name: &str) -> CounterHandle {
        let mut r = self.inner.borrow_mut();
        let cell = r
            .counters
            .entry(name.to_owned())
            .or_insert_with(|| Rc::new(Cell::new(0)));
        CounterHandle {
            cell: Rc::clone(cell),
        }
    }

    /// Increments the named counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// The named counter's current value.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.borrow().counter(name)
    }

    /// Sets the named gauge.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.inner.borrow_mut().gauges.insert(name.to_owned(), v);
    }

    /// The named gauge's last written value.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.borrow().gauges.get(name).copied()
    }

    /// Records `v` into the named log-linear histogram.
    pub fn observe(&self, name: &str, v: u64) {
        self.inner
            .borrow_mut()
            .histograms
            .entry(name.to_owned())
            .or_default()
            .record(v);
    }

    /// Appends a trace event, dropping (and counting) the oldest past the
    /// ring bound. Allocates a fresh shared label; hot paths that reuse
    /// one label should intern it and call [`Telemetry::trace_shared`].
    pub fn trace(&self, at_us: u64, node: u32, label: &str, kind: &'static str, detail: String) {
        self.trace_shared(at_us, node, &Rc::from(label), kind, detail);
    }

    /// Appends a trace event whose label is already shared — a
    /// reference-count bump, no string copy.
    pub fn trace_shared(
        &self,
        at_us: u64,
        node: u32,
        label: &Rc<str>,
        kind: &'static str,
        detail: String,
    ) {
        let mut r = self.inner.borrow_mut();
        if r.trace.len() >= r.trace_capacity {
            r.trace.pop_front();
            r.trace_dropped += 1;
        }
        r.trace.push_back(TraceEvent {
            at_us,
            node,
            label: Rc::clone(label),
            kind,
            detail,
        });
    }

    /// Opens (or restarts) the span keyed by `(node, id)`.
    pub fn span_start(&self, at_us: u64, node: u32, id: u64) {
        self.inner.borrow_mut().spans.insert((node, id), at_us);
    }

    /// Closes the span keyed by `(node, id)`, returning the elapsed
    /// microseconds, or `None` when no span was open.
    pub fn span_end(&self, at_us: u64, node: u32, id: u64) -> Option<u64> {
        self.inner
            .borrow_mut()
            .spans
            .remove(&(node, id))
            .map(|start| at_us.saturating_sub(start))
    }

    /// Number of trace events currently retained.
    #[must_use]
    pub fn trace_len(&self) -> usize {
        self.inner.borrow().trace.len()
    }

    /// The last `n` trace events (any label), oldest first, rendered.
    #[must_use]
    pub fn last_events(&self, n: usize) -> Vec<String> {
        let r = self.inner.borrow();
        let skip = r.trace.len().saturating_sub(n);
        r.trace.iter().skip(skip).map(TraceEvent::render).collect()
    }

    /// The last `n` trace events for `label`, oldest first, rendered.
    #[must_use]
    pub fn events_for_label(&self, label: &str, n: usize) -> Vec<String> {
        let r = self.inner.borrow();
        let mut picked: Vec<&TraceEvent> =
            r.trace.iter().rev().filter(|e| &*e.label == label).take(n).collect();
        picked.reverse();
        picked.into_iter().map(TraceEvent::render).collect()
    }

    /// Read access to the whole registry (for exporters).
    pub fn with_registry<R>(&self, f: impl FnOnce(&Registry) -> R) -> R {
        f(&self.inner.borrow())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let t = Telemetry::new();
        assert_eq!(t.counter("a"), 0);
        t.incr("a");
        t.add("a", 4);
        assert_eq!(t.counter("a"), 5);
        t.set_gauge("g", 2.5);
        assert_eq!(t.gauge("g"), Some(2.5));
        assert_eq!(t.gauge("missing"), None);
        // Clones share the registry.
        let u = t.clone();
        u.incr("a");
        assert_eq!(t.counter("a"), 6);
    }

    #[test]
    fn counter_handles_share_the_named_cell() {
        let t = Telemetry::new();
        t.add("hot", 2);
        let h = t.counter_handle("hot");
        h.incr();
        h.add(3);
        assert_eq!(h.get(), 6);
        assert_eq!(t.counter("hot"), 6, "handle writes are visible by name");
        t.incr("hot");
        assert_eq!(h.get(), 7, "named writes are visible through the handle");
        // Resolving an unseen name registers it at zero, and exports see it.
        let fresh = t.counter_handle("fresh");
        assert_eq!(t.counter("fresh"), 0);
        fresh.incr();
        t.with_registry(|r| {
            let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
            assert_eq!(names, vec!["fresh", "hot"], "name order is stable");
        });
    }

    #[test]
    fn histogram_buckets_are_log_linear() {
        // Values below 4 get exact buckets.
        for v in 0..4u64 {
            assert_eq!(
                LogLinearHistogram::bucket_low(LogLinearHistogram::bucket_index(v)),
                v
            );
        }
        // Every bucket's lower bound maps back to the same bucket, and
        // bounds are strictly increasing.
        let mut prev = None;
        for i in 0..200u32 {
            let low = LogLinearHistogram::bucket_low(i);
            assert_eq!(LogLinearHistogram::bucket_index(low), i, "index {i}");
            if let Some(p) = prev {
                assert!(low > p);
            }
            prev = Some(low);
        }
        // A value never lands below its bucket's lower bound.
        for v in [5u64, 9, 100, 1000, 65_537, u64::MAX] {
            let i = LogLinearHistogram::bucket_index(v);
            assert!(LogLinearHistogram::bucket_low(i) <= v);
        }
    }

    #[test]
    fn histogram_records_and_summarizes() {
        let mut h = LogLinearHistogram::default();
        assert!(h.is_empty());
        for v in [1u64, 2, 2, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1105);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 221.0).abs() < 1e-9);
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        // 1→one bucket, 2→one bucket (count 2), 100 and 1000 separate.
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[1], (2, 2));
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        let mut h = LogLinearHistogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        // 100 observations of 1, one outlier at 1000.
        for _ in 0..100 {
            h.record(1);
        }
        h.record(1000);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.99), 1);
        let p100 = h.quantile(1.0);
        assert!(
            LogLinearHistogram::bucket_index(p100) == LogLinearHistogram::bucket_index(1000),
            "p100 lands in the outlier's bucket, got {p100}"
        );
        // Quantile is monotone in q and bounded by max.
        let mut single = LogLinearHistogram::default();
        single.record(42);
        for q in [0.0, 0.25, 0.5, 0.999, 1.0, 7.0, -1.0] {
            let v = single.quantile(q);
            assert!(v <= single.max());
            assert_eq!(
                LogLinearHistogram::bucket_index(v),
                LogLinearHistogram::bucket_index(42)
            );
        }
    }

    #[test]
    fn trace_ring_drops_oldest() {
        let t = Telemetry::with_trace_capacity(3);
        for i in 0..5u64 {
            t.trace(i, 0, "l", "k", format!("e{i}"));
        }
        assert_eq!(t.trace_len(), 3);
        t.with_registry(|r| {
            assert_eq!(r.trace_dropped(), 2);
            let details: Vec<&str> =
                r.trace_events().map(|e| e.detail.as_str()).collect();
            assert_eq!(details, vec!["e2", "e3", "e4"]);
        });
    }

    #[test]
    fn label_filtered_tail_is_ordered_oldest_first() {
        let t = Telemetry::new();
        for i in 0..10u64 {
            let label = if i % 2 == 0 { "even" } else { "odd" };
            t.trace(i, 1, label, "k", format!("{i}"));
        }
        let tail = t.events_for_label("even", 3);
        assert_eq!(tail.len(), 3);
        assert!(tail[0].contains(" 4"));
        assert!(tail[2].contains(" 8"));
        assert!(t.events_for_label("missing", 4).is_empty());
        let all = t.last_events(4);
        assert_eq!(all.len(), 4);
        assert!(all[0].ends_with('6'));
    }

    #[test]
    fn spans_pair_start_and_end() {
        let t = Telemetry::new();
        t.span_start(100, 7, 42);
        assert_eq!(t.span_end(160, 7, 42), Some(60));
        assert_eq!(t.span_end(200, 7, 42), None, "span consumed");
        // Restart overwrites.
        t.span_start(10, 7, 42);
        t.span_start(20, 7, 42);
        assert_eq!(t.span_end(25, 7, 42), Some(5));
        // Clock weirdness saturates rather than panicking.
        t.span_start(50, 7, 42);
        assert_eq!(t.span_end(40, 7, 42), Some(0));
        // Ids are independent per (node, id) pair.
        t.span_start(0, 7, 1);
        t.span_start(0, 8, 1);
        assert_eq!(t.span_end(9, 8, 1), Some(9));
        assert_eq!(t.span_end(10, 7, 1), Some(10));
    }

    #[test]
    fn interner_formats_once_and_shares() {
        let pool = Interner::new();
        let mut formats = 0;
        let a = pool.get_or_insert_with(7, || {
            formats += 1;
            "type0@n3#1".to_owned()
        });
        let b = pool.get_or_insert_with(7, || {
            formats += 1;
            unreachable!("key 7 is already interned")
        });
        assert_eq!(formats, 1);
        assert!(Rc::ptr_eq(&a, &b), "same key aliases one allocation");
        assert_eq!(pool.len(), 1);
        // Clones share the pool; traces share the interned label.
        let clone = pool.clone();
        let c = clone.get_or_insert_with(7, || unreachable!());
        assert!(Rc::ptr_eq(&a, &c));
        let t = Telemetry::new();
        t.trace_shared(5, 3, &a, "group.hb", String::new());
        t.with_registry(|r| {
            let e = r.trace_events().next().unwrap();
            assert!(Rc::ptr_eq(&e.label, &a));
            assert_eq!(e.render(), "5us n3 [type0@n3#1] group.hb ");
        });
    }

    #[test]
    fn render_is_stable() {
        let e = TraceEvent {
            at_us: 1_500_000,
            node: 3,
            label: "type0@n3#1".into(),
            kind: "group.hb",
            detail: "seq=9".into(),
        };
        assert_eq!(e.render(), "1500000us n3 [type0@n3#1] group.hb seq=9");
    }
}
