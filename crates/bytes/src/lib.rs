//! In-tree minimal byte buffers: the subset of the `bytes` crate API that
//! EnviroTrack's wire codec and payloads use, reimplemented over `std` so
//! the workspace builds hermetically with no crates.io access.
//!
//! The lib target is named `bytes` so `use bytes::{Buf, BufMut, Bytes,
//! BytesMut}` keeps working unchanged across the workspace. Semantics match
//! the upstream crate for the covered surface:
//!
//! * [`Bytes`] — a cheaply cloneable immutable byte buffer (static slice or
//!   reference-counted heap allocation).
//! * [`BytesMut`] — a growable write buffer, frozen into a [`Bytes`].
//! * [`Buf`] — big-endian cursor reads over `&[u8]`, advancing the slice.
//! * [`BufMut`] — big-endian appends onto a [`BytesMut`].
//!
//! ```
//! use bytes::{Buf, BufMut, Bytes, BytesMut};
//!
//! let mut w = BytesMut::with_capacity(16);
//! w.put_u8(7);
//! w.put_u32(0xDEAD_BEEF);
//! let frozen: Bytes = w.freeze();
//!
//! let mut r: &[u8] = &frozen;
//! assert_eq!(r.get_u8(), 7);
//! assert_eq!(r.get_u32(), 0xDEAD_BEEF);
//! assert_eq!(r.remaining(), 0);
//! ```

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone)]
pub enum Bytes {
    /// Borrowed from a `'static` slice — no allocation, free to clone.
    Static(&'static [u8]),
    /// Shared ownership of a heap allocation.
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub const fn new() -> Self {
        Bytes::Static(&[])
    }

    /// Wraps a `'static` slice without copying.
    #[must_use]
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes::Static(data)
    }

    /// Copies a slice into a new shared buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::Shared(Arc::from(data))
    }

    /// The buffer contents.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Bytes::Static(s) => s,
            Bytes::Shared(a) => a,
        }
    }

    /// Number of bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::Shared(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::Static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::Static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A growable byte buffer for building wire messages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Big-endian cursor reads. Implemented for `&[u8]`: each read consumes the
/// front of the slice, so a `&mut &[u8]` walks a message in place.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads and consumes one byte.
    ///
    /// # Panics
    ///
    /// All `get_*` methods panic when fewer than the required bytes remain;
    /// callers bound-check with [`Buf::remaining`] first.
    fn get_u8(&mut self) -> u8;
    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
    /// Reads a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64;
}

macro_rules! get_impl {
    ($self:ident, $ty:ty, $n:expr) => {{
        let mut raw = [0u8; $n];
        raw.copy_from_slice(&$self[..$n]);
        *$self = &$self[$n..];
        <$ty>::from_be_bytes(raw)
    }};
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }
    fn get_u16(&mut self) -> u16 {
        get_impl!(self, u16, 2)
    }
    fn get_u32(&mut self) -> u32 {
        get_impl!(self, u32, 4)
    }
    fn get_u64(&mut self) -> u64 {
        get_impl!(self, u64, 8)
    }
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(get_impl!(self, u64, 8))
    }
}

/// Big-endian appends onto a write buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64);
    /// Appends a raw slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f64(-1.5);
        w.put_slice(b"tail");
        let b = w.freeze();
        let mut r: &[u8] = &b;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8 + 4);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64(), -1.5);
        assert_eq!(r, b"tail".as_slice());
    }

    #[test]
    fn encoding_is_big_endian() {
        let mut w = BytesMut::new();
        w.put_u16(0x0102);
        assert_eq!(&*w, &[1, 2]);
    }

    #[test]
    fn bytes_constructors_agree() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        let c = Bytes::from(vec![b'a', b'b', b'c']);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from("abc").to_vec(), b"abc");
        assert_eq!(Bytes::from(String::from("abc")), a);
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::copy_from_slice(&[1, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn hash_matches_slice_semantics() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Bytes::from_static(b"k"));
        assert!(set.contains(&Bytes::copy_from_slice(b"k")));
    }
}
