//! Property-based tests: pretty-print ∘ parse round trips for random ASTs.

use envirotrack_lang::ast::{
    AggrDecl, AttrValue, BoolExpr, CmpOp, ContextDecl, Expr, InvocationDecl, MethodDecl,
    ObjectDecl, ProgramDecl, Stmt,
};
use envirotrack_lang::parser::parse;
use envirotrack_lang::pretty::to_source;
use testkit::prelude::*;

/// Identifiers that cannot collide with keywords or tokens.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_filter("not a keyword", |s| {
        !matches!(
            s.as_str(),
            "begin"
                | "end"
                | "context"
                | "object"
                | "activation"
                | "deactivation"
                | "invocation"
                | "subscribe"
                | "and"
                | "or"
                | "not"
                | "self"
                | "label"
        )
    })
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Gt),
        Just(CmpOp::Lt),
        Just(CmpOp::Ge),
        Just(CmpOp::Le),
        Just(CmpOp::Eq),
    ]
}

fn arb_bool_expr() -> impl Strategy<Value = BoolExpr> {
    let leaf = prop_oneof![
        (ident(), prop::collection::vec(0u32..10_000, 0..3)).prop_map(|(name, args)| {
            BoolExpr::Call {
                name,
                args: args.into_iter().map(f64::from).collect(),
            }
        }),
        (ident(), arb_cmp(), 0u32..100_000).prop_map(|(channel, op, v)| BoolExpr::Compare {
            channel,
            op,
            value: f64::from(v)
        }),
        ident().prop_map(|channel| BoolExpr::Truthy { channel }),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| BoolExpr::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| BoolExpr::Or(Box::new(l), Box::new(r))),
            inner.prop_map(|e| BoolExpr::Not(Box::new(e))),
        ]
    })
}

fn arb_attr_value() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        (0u64..1_000_000).prop_map(AttrValue::Int),
        // Durations only in whole ms so the printer's unit choice re-lexes
        // identically.
        (1u64..100_000).prop_map(|ms| AttrValue::DurationMicros(ms * 1000)),
        ident().prop_map(AttrValue::Ident),
    ]
}

fn arb_aggr() -> impl Strategy<Value = AggrDecl> {
    (
        ident(),
        ident(),
        ident(),
        prop::collection::vec((ident(), arb_attr_value()), 0..3),
    )
        .prop_map(|(name, function, input, attrs)| AggrDecl {
            name,
            function,
            input,
            attrs,
            line: 0,
        })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::SelfLabel),
        ident().prop_map(Expr::Var),
        "[ -!#-\\[\\]-~]{0,12}".prop_map(Expr::Str), // printable, no quote/backslash
        (0u32..1_000_000).prop_map(|n| Expr::Num(f64::from(n))),
    ]
}

fn arb_method() -> impl Strategy<Value = MethodDecl> {
    let invocation = prop_oneof![
        (1u64..10_000).prop_map(|ms| InvocationDecl::TimerMicros(ms * 1000)),
        any::<u16>().prop_map(InvocationDecl::MessagePort),
    ];
    (
        ident(),
        invocation,
        prop::collection::vec(
            (ident(), prop::collection::vec(arb_expr(), 0..4)).prop_map(|(name, args)| Stmt {
                name,
                args,
                line: 0,
            }),
            0..4,
        ),
    )
        .prop_map(|(name, invocation, body)| MethodDecl {
            name,
            invocation,
            body,
            line: 0,
        })
}

fn arb_object() -> impl Strategy<Value = ObjectDecl> {
    (ident(), prop::collection::vec(arb_method(), 1..3))
        .prop_map(|(name, methods)| ObjectDecl { name, methods })
}

fn arb_context() -> impl Strategy<Value = ContextDecl> {
    (
        ident(),
        arb_bool_expr(),
        prop::option::of(arb_bool_expr()),
        prop::collection::vec(ident(), 0..3),
        prop::option::of((0u32..100, 0u32..100).prop_map(|(x, y)| (f64::from(x), f64::from(y)))),
        prop::collection::vec(arb_aggr(), 0..3),
        prop::collection::vec(arb_object(), 0..2),
    )
        .prop_map(
            |(name, activation, deactivation, subscriptions, pinned, aggregates, objects)| {
                ContextDecl {
                    name,
                    activation,
                    deactivation,
                    subscriptions,
                    pinned,
                    aggregates,
                    objects,
                    line: 0,
                }
            },
        )
}

/// Strips source positions so structural equality ignores them.
fn strip(mut p: ProgramDecl) -> ProgramDecl {
    for c in &mut p.contexts {
        c.line = 0;
        for a in &mut c.aggregates {
            a.line = 0;
        }
        for o in &mut c.objects {
            for m in &mut o.methods {
                m.line = 0;
                for s in &mut m.body {
                    s.line = 0;
                }
            }
        }
    }
    p
}

prop_test! {
    #![config(Config::with_cases(64))]

    /// Printing any AST and re-parsing it yields the same AST.
    #[test]
    fn print_parse_round_trip(contexts in prop::collection::vec(arb_context(), 1..3)) {
        let ast = ProgramDecl { contexts };
        let src = to_source(&ast);
        let reparsed = parse(&src).unwrap_or_else(|e| panic!("{e}\n--- source ---\n{src}"));
        prop_assert_eq!(strip(reparsed), ast);
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_is_total(src in "\\PC{0,200}") {
        let _ = parse(&src);
    }
}
