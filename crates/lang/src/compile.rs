//! The EnviroTrack preprocessor: AST → runtime [`Program`].
//!
//! The paper's preprocessor "patches a set of NesC program templates" from
//! the context description file; ours compiles the same declarations into
//! the runtime structures the middleware executes directly. Method bodies
//! are compiled to closures interpreting a small action language:
//!
//! | Statement | Effect |
//! |---|---|
//! | `MySend(pursuer, self:label, VAR);` | read aggregate `VAR`; if confirmed, send it to the base station (the label travels implicitly) |
//! | `send_base(VAR);` | same, without the paper's ceremonial arguments |
//! | `log("text", VAR, …);` | append to the application log, formatting aggregate reads |
//! | `set_state("blob");` | persist state across leader handovers |
//!
//! Unsupported statements are compile-time errors naming the statement and
//! the supported set — richer bodies use the Rust builder API directly.

use std::fmt;

use envirotrack_core::aggregate::{AggValue, AggregateFn, AggregateInput};
use envirotrack_core::api::{Program, ProgramError};
use envirotrack_core::context::SensePredicate;
use envirotrack_core::object::{payload, ObjectApi};
use envirotrack_core::transport::Port;
use envirotrack_sim::time::SimDuration;
use envirotrack_world::target::Channel;

use crate::ast::{
    AggrDecl, AttrValue, BoolExpr, CmpOp, ContextDecl, Expr, InvocationDecl, ProgramDecl, Stmt,
};
use crate::builtins::Builtins;
use crate::parser::{parse, ParseError};

/// Error produced while compiling a parsed program.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The source failed to parse.
    Parse(ParseError),
    /// A semantic problem, with source line and message.
    Semantic {
        /// 1-based source line (0 when unavailable).
        line: u32,
        /// The problem.
        message: String,
    },
    /// The assembled program failed core validation.
    Program(ProgramError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Semantic { line, message } => {
                write!(f, "compile error at line {line}: {message}")
            }
            CompileError::Program(e) => write!(f, "program error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<ProgramError> for CompileError {
    fn from(e: ProgramError) -> Self {
        CompileError::Program(e)
    }
}

fn semantic(line: u32, message: impl Into<String>) -> CompileError {
    CompileError::Semantic {
        line,
        message: message.into(),
    }
}

/// Compiles EnviroTrack source text into a runnable [`Program`] using the
/// standard sensing-function library.
///
/// # Errors
///
/// Returns [`CompileError`] on parse errors, unknown sensing functions or
/// channels, bad QoS attributes, or unsupported body statements.
///
/// ```
/// let program = envirotrack_lang::compile::compile_source(r#"
///     begin context tracker
///       activation: magnetic_sensor_reading()
///       location : avg(position) confidence=2, freshness=1s
///       begin object reporter
///         invocation: TIMER(5s)
///         report_function() {
///           MySend(pursuer, self:label, location);
///         }
///       end
///     end context
/// "#).unwrap();
/// assert_eq!(program.context_count(), 1);
/// ```
pub fn compile_source(src: &str) -> Result<Program, CompileError> {
    compile_source_with(src, &Builtins::standard())
}

/// Like [`compile_source`], with a caller-supplied sensing-function
/// library (the paper's "user-defined functions can be easily added").
pub fn compile_source_with(src: &str, builtins: &Builtins) -> Result<Program, CompileError> {
    let ast = parse(src)?;
    compile_ast(&ast, builtins)
}

/// Compiles an already-parsed program.
///
/// # Errors
///
/// See [`compile_source`].
pub fn compile_ast(ast: &ProgramDecl, builtins: &Builtins) -> Result<Program, CompileError> {
    let mut builder = Program::builder();
    for ctx in &ast.contexts {
        let compiled = compile_context(ctx, builtins)?;
        builder = builder.context(ctx.name.clone(), move |mut b| {
            b = b.activation(compiled.activation);
            if let Some((x, y)) = compiled.pinned {
                b = b.pinned(envirotrack_world::geometry::Point::new(x, y));
            }
            if let Some(d) = compiled.deactivation {
                b = b.deactivation(d);
            }
            for s in compiled.subscriptions {
                b = b.subscribe(s);
            }
            for a in compiled.aggregates {
                b = b.aggregate(a.0, a.1, a.2, a.3, a.4);
            }
            for (obj_name, methods) in compiled.objects {
                b = b.object(obj_name, move |mut ob| {
                    for m in methods {
                        ob = match m.invocation {
                            InvocationDecl::TimerMicros(us) => {
                                let body = m.body;
                                ob.on_timer(
                                    m.name,
                                    SimDuration::from_micros(us),
                                    move |api: &mut ObjectApi<'_>| run_body(&body, api),
                                )
                            }
                            InvocationDecl::MessagePort(p) => {
                                let body = m.body;
                                ob.on_message(m.name, Port(p), move |api: &mut ObjectApi<'_>| {
                                    run_body(&body, api)
                                })
                            }
                        };
                    }
                    ob
                });
            }
            b
        });
    }
    Ok(builder.build()?)
}

/// Intermediate, fully-resolved context pieces (everything validated before
/// entering the builder closures).
struct CompiledContext {
    activation: SensePredicate,
    deactivation: Option<SensePredicate>,
    pinned: Option<(f64, f64)>,
    subscriptions: Vec<String>,
    aggregates: Vec<(String, AggregateFn, AggregateInput, SimDuration, u32)>,
    objects: Vec<(String, Vec<CompiledMethod>)>,
}

struct CompiledMethod {
    name: String,
    invocation: InvocationDecl,
    body: Vec<Stmt>,
}

fn compile_context(
    ctx: &ContextDecl,
    builtins: &Builtins,
) -> Result<CompiledContext, CompileError> {
    let activation = compile_bool(&ctx.activation, builtins, ctx.line)?;
    let deactivation = ctx
        .deactivation
        .as_ref()
        .map(|d| compile_bool(d, builtins, ctx.line))
        .transpose()?;
    let aggregates = ctx
        .aggregates
        .iter()
        .map(compile_aggregate)
        .collect::<Result<_, _>>()?;
    let mut objects = Vec::new();
    for obj in &ctx.objects {
        let mut methods = Vec::new();
        for m in &obj.methods {
            validate_body(&m.body, ctx)?;
            methods.push(CompiledMethod {
                name: m.name.clone(),
                invocation: m.invocation.clone(),
                body: m.body.clone(),
            });
        }
        objects.push((obj.name.clone(), methods));
    }
    Ok(CompiledContext {
        activation,
        deactivation,
        pinned: ctx.pinned,
        subscriptions: ctx.subscriptions.clone(),
        aggregates,
        objects,
    })
}

fn compile_bool(
    expr: &BoolExpr,
    builtins: &Builtins,
    line: u32,
) -> Result<SensePredicate, CompileError> {
    match expr {
        BoolExpr::Call { name, args } => builtins
            .instantiate(name, args)
            .map_err(|m| semantic(line, m)),
        BoolExpr::Compare { channel, op, value } => {
            let ch = parse_channel(channel, line)?;
            let (op, value) = (*op, *value);
            let name = format!("{ch} {} {value}", op_str(op));
            Ok(SensePredicate::new(name, move |s| {
                let x = s.get(ch);
                match op {
                    CmpOp::Gt => x > value,
                    CmpOp::Lt => x < value,
                    CmpOp::Ge => x >= value,
                    CmpOp::Le => x <= value,
                    CmpOp::Eq => (x - value).abs() < f64::EPSILON,
                }
            }))
        }
        BoolExpr::Truthy { channel } => {
            let ch = parse_channel(channel, line)?;
            Ok(SensePredicate::threshold(ch, 0.5))
        }
        BoolExpr::And(l, r) => {
            Ok(compile_bool(l, builtins, line)?.and(compile_bool(r, builtins, line)?))
        }
        BoolExpr::Or(l, r) => {
            Ok(compile_bool(l, builtins, line)?.or(compile_bool(r, builtins, line)?))
        }
        BoolExpr::Not(inner) => {
            let p = compile_bool(inner, builtins, line)?;
            Ok(SensePredicate::new(
                format!("not ({})", p.name()),
                move |s| !p.eval(s),
            ))
        }
    }
}

fn op_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Gt => ">",
        CmpOp::Lt => "<",
        CmpOp::Ge => ">=",
        CmpOp::Le => "<=",
        CmpOp::Eq => "==",
    }
}

fn parse_channel(name: &str, line: u32) -> Result<Channel, CompileError> {
    name.parse().map_err(|_| {
        semantic(
            line,
            format!(
                "unknown sensor channel {name:?} (available: {})",
                Channel::ALL.map(|c| c.to_string()).join(", ")
            ),
        )
    })
}

type AggregateTuple = (String, AggregateFn, AggregateInput, SimDuration, u32);

fn compile_aggregate(decl: &AggrDecl) -> Result<AggregateTuple, CompileError> {
    let input = if decl.input == "position" {
        AggregateInput::Position
    } else {
        AggregateInput::Channel(parse_channel(&decl.input, decl.line)?)
    };
    let function = match (decl.function.as_str(), input) {
        ("avg" | "average", AggregateInput::Position) => AggregateFn::CenterOfGravity,
        ("cog" | "center_of_gravity", _) => AggregateFn::CenterOfGravity,
        ("avg" | "average", _) => AggregateFn::Average,
        ("sum", _) => AggregateFn::Sum,
        ("min", _) => AggregateFn::Min,
        ("max", _) => AggregateFn::Max,
        ("count", _) => AggregateFn::Count,
        (other, _) => {
            return Err(semantic(
                decl.line,
                format!(
                    "unknown aggregation function {other:?} (available: avg, sum, min, max, count, cog)"
                ),
            ))
        }
    };
    let mut freshness = None;
    let mut critical_mass = None;
    for (key, value) in &decl.attrs {
        match (key.as_str(), value) {
            ("freshness", AttrValue::DurationMicros(us)) => {
                freshness = Some(SimDuration::from_micros(*us));
            }
            ("freshness", _) => {
                return Err(semantic(
                    decl.line,
                    "freshness needs a duration, e.g. freshness=1s",
                ))
            }
            ("confidence" | "critical_mass", AttrValue::Int(n)) => {
                critical_mass = Some(
                    u32::try_from(*n)
                        .map_err(|_| semantic(decl.line, "confidence out of range"))?,
                );
            }
            ("confidence" | "critical_mass", _) => {
                return Err(semantic(
                    decl.line,
                    "confidence needs an integer, e.g. confidence=2",
                ))
            }
            (other, _) => {
                return Err(semantic(
                    decl.line,
                    format!("unknown attribute {other:?} (available: confidence, freshness)"),
                ))
            }
        }
    }
    let freshness = freshness.ok_or_else(|| {
        semantic(
            decl.line,
            format!("aggregate {:?} needs freshness=…", decl.name),
        )
    })?;
    let critical_mass = critical_mass.ok_or_else(|| {
        semantic(
            decl.line,
            format!("aggregate {:?} needs confidence=…", decl.name),
        )
    })?;
    Ok((decl.name.clone(), function, input, freshness, critical_mass))
}

/// Statements the interpreter supports.
const SUPPORTED: &str =
    "MySend(pursuer, self:label, VAR), send_base(VAR), log(…), set_state(\"…\")";

fn validate_body(body: &[Stmt], ctx: &ContextDecl) -> Result<(), CompileError> {
    for stmt in body {
        match stmt.name.as_str() {
            "MySend" => {
                let var = stmt.args.iter().rev().find_map(|a| match a {
                    Expr::Var(v) => Some(v),
                    _ => None,
                });
                match var {
                    Some(v) if ctx.aggregates.iter().any(|a| &a.name == v) => {}
                    Some(v) => {
                        return Err(semantic(
                            stmt.line,
                            format!("MySend references undeclared aggregate variable {v:?}"),
                        ))
                    }
                    None => {
                        return Err(semantic(
                            stmt.line,
                            "MySend needs an aggregate variable to send",
                        ))
                    }
                }
            }
            "send_base" => match stmt.args.as_slice() {
                [Expr::Var(v)] if ctx.aggregates.iter().any(|a| &a.name == v) => {}
                _ => {
                    return Err(semantic(
                        stmt.line,
                        "send_base takes exactly one declared aggregate variable",
                    ))
                }
            },
            "log" => {
                for a in &stmt.args {
                    if let Expr::Var(v) = a {
                        if !ctx.aggregates.iter().any(|ag| &ag.name == v) {
                            return Err(semantic(
                                stmt.line,
                                format!("log references undeclared aggregate variable {v:?}"),
                            ));
                        }
                    }
                }
            }
            "set_state" => match stmt.args.as_slice() {
                [Expr::Str(_)] => {}
                _ => return Err(semantic(stmt.line, "set_state takes one string literal")),
            },
            other => {
                return Err(semantic(
                    stmt.line,
                    format!("unsupported statement {other:?} (supported: {SUPPORTED})"),
                ))
            }
        }
    }
    Ok(())
}

/// Interprets a compiled body against the live object context.
fn run_body(body: &[Stmt], api: &mut ObjectApi<'_>) {
    for stmt in body {
        match stmt.name.as_str() {
            "MySend" | "send_base" => {
                let var = stmt.args.iter().rev().find_map(|a| match a {
                    Expr::Var(v) => Some(v.as_str()),
                    _ => None,
                });
                let Some(var) = var else { continue };
                // An unconfirmed siting (null flag) is silently skipped —
                // the paper leaves the handling application-specific, and
                // "no action" is its first suggestion.
                match api.read(var) {
                    Ok(AggValue::Point(p)) => api.send_to_base(payload::position(p)),
                    Ok(AggValue::Scalar(x)) => api.send_to_base(payload::scalar(x)),
                    Err(_) => {}
                }
            }
            "log" => {
                let mut parts = Vec::with_capacity(stmt.args.len() + 1);
                parts.push(format!("[{}]", api.label()));
                for a in &stmt.args {
                    match a {
                        Expr::Str(s) => parts.push(s.clone()),
                        Expr::Num(x) => parts.push(x.to_string()),
                        Expr::SelfLabel => parts.push(api.label().to_string()),
                        Expr::Var(v) => match api.read(v) {
                            Ok(value) => parts.push(format!("{v}={value}")),
                            Err(e) => parts.push(format!("{v}=<{e}>")),
                        },
                    }
                }
                api.log(parts.join(" "));
            }
            "set_state" => {
                if let [Expr::Str(s)] = stmt.args.as_slice() {
                    api.set_state(bytes::Bytes::copy_from_slice(s.as_bytes()));
                }
            }
            _ => unreachable!("validate_body admits only supported statements"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE_2: &str = r#"
        begin context tracker
          activation: magnetic_sensor_reading()
          location : avg(position) confidence=2, freshness=1s
          begin object reporter
            invocation: TIMER(5s)
            report_function() {
              MySend(pursuer, self:label, location);
            }
          end
        end context
    "#;

    #[test]
    fn figure_two_compiles_to_a_program() {
        let p = compile_source(FIGURE_2).unwrap();
        assert_eq!(p.context_count(), 1);
        let tid = p.type_id("tracker").unwrap();
        let spec = p.spec(tid);
        assert_eq!(spec.aggregates.len(), 1);
        assert_eq!(spec.aggregates[0].name, "location");
        assert_eq!(spec.aggregates[0].critical_mass, 2);
        assert_eq!(spec.aggregates[0].freshness, SimDuration::from_secs(1));
        assert!(matches!(
            spec.aggregates[0].function,
            AggregateFn::CenterOfGravity
        ));
        assert_eq!(spec.objects.len(), 1);
        assert_eq!(spec.objects[0].methods.len(), 1);
    }

    #[test]
    fn fire_context_with_comparison_compiles() {
        let p = compile_source(
            r#"begin context fire
                 activation: temperature > 180 and light
                 heat : avg(temperature) confidence=3, freshness=3s
               end context"#,
        )
        .unwrap();
        let spec = p.spec(p.type_id("fire").unwrap());
        let mut s = envirotrack_world::sensing::SensorSample::zero();
        s.set(Channel::Temperature, 200.0);
        assert!(!spec.activation.eval(&s));
        s.set(Channel::Light, 1.0);
        assert!(spec.activation.eval(&s));
    }

    #[test]
    fn unknown_sensing_function_is_reported_with_alternatives() {
        let e =
            compile_source("begin context x\n activation: sonar_ping()\n end context").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("sonar_ping"), "{msg}");
        assert!(msg.contains("magnetic_sensor_reading"), "{msg}");
    }

    #[test]
    fn unknown_channel_is_reported() {
        let e = compile_source("begin context x\n activation: radiation > 5\n end context")
            .unwrap_err();
        assert!(e.to_string().contains("radiation"), "{e}");
    }

    #[test]
    fn missing_qos_attributes_are_errors() {
        let e = compile_source(
            "begin context x\n activation: light\n v : avg(light) confidence=2\n end context",
        )
        .unwrap_err();
        assert!(e.to_string().contains("freshness"), "{e}");
        let e = compile_source(
            "begin context x\n activation: light\n v : avg(light) freshness=1s\n end context",
        )
        .unwrap_err();
        assert!(e.to_string().contains("confidence"), "{e}");
    }

    #[test]
    fn undeclared_variable_in_body_is_an_error() {
        let e = compile_source(
            r#"begin context x
                 activation: light
                 begin object o
                   invocation: TIMER(1s)
                   f() { MySend(pursuer, self:label, velocity); }
                 end
               end context"#,
        )
        .unwrap_err();
        assert!(e.to_string().contains("velocity"), "{e}");
    }

    #[test]
    fn unsupported_statement_lists_the_supported_set() {
        let e = compile_source(
            r#"begin context x
                 activation: light
                 begin object o
                   invocation: TIMER(1s)
                   f() { detonate(); }
                 end
               end context"#,
        )
        .unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("detonate"), "{msg}");
        assert!(msg.contains("send_base"), "{msg}");
    }

    #[test]
    fn duplicate_context_surfaces_core_validation() {
        let src = "begin context a\n activation: light\n end context\nbegin context a\n activation: light\n end context";
        let e = compile_source(src).unwrap_err();
        assert!(matches!(
            e,
            CompileError::Program(ProgramError::DuplicateContext { .. })
        ));
    }

    #[test]
    fn not_and_or_compose_in_predicates() {
        let p = compile_source(
            "begin context x\n activation: not light and (motion or acoustic > 2)\n end context",
        )
        .unwrap();
        let spec = p.spec(p.type_id("x").unwrap());
        let mut s = envirotrack_world::sensing::SensorSample::zero();
        s.set(Channel::Acoustic, 3.0);
        assert!(spec.activation.eval(&s), "dark + loud should activate");
        s.set(Channel::Light, 1.0);
        assert!(!spec.activation.eval(&s), "light kills it via `not`");
    }
}
