//! Lexer for the EnviroTrack context-declaration language.
//!
//! The surface syntax follows the paper's Figure 2 and Appendix A:
//!
//! ```text
//! begin context tracker
//!   activation: magnetic_sensor_reading()
//!   location : avg(position) confidence=2, freshness=1s
//!   begin object reporter
//!     invocation: TIMER(5s)
//!     report_function() {
//!       MySend(pursuer, self:label, location);
//!     }
//!   end
//! end context
//! ```
//!
//! Tokens carry their source line/column for error reporting.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier or keyword (`begin`, `context`, `avg`, `tracker`, …).
    Ident(String),
    /// An integer literal.
    Int(u64),
    /// A floating-point literal.
    Float(f64),
    /// A duration literal such as `1s`, `250ms`, `5us`.
    Duration(u64),
    /// A double-quoted string literal (escapes: `\"` and `\\`).
    Str(String),
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `=`
    Eq,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `==`
    EqEq,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(n) => write!(f, "{n}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Duration(us) => write!(f, "{us}us"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Colon => f.write_str(":"),
            Tok::Comma => f.write_str(","),
            Tok::Semi => f.write_str(";"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBrace => f.write_str("{"),
            Tok::RBrace => f.write_str("}"),
            Tok::Eq => f.write_str("="),
            Tok::Gt => f.write_str(">"),
            Tok::Lt => f.write_str("<"),
            Tok::Ge => f.write_str(">="),
            Tok::Le => f.write_str("<="),
            Tok::EqEq => f.write_str("=="),
            Tok::Eof => f.write_str("<end of input>"),
        }
    }
}

/// A token plus its source position (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// Error produced on malformed input.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenises `src`. Comments run from `//` or `#` to end of line.
///
/// # Errors
///
/// Returns [`LexError`] on unknown characters, malformed numbers, or
/// unterminated strings.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;

    let err = |message: &str, line: u32, col: u32| LexError {
        message: message.into(),
        line,
        col,
    };

    while i < bytes.len() {
        let c = bytes[i];
        let (tline, tcol) = (line, col);
        let advance = |i: &mut usize, line: &mut u32, col: &mut u32| {
            if bytes[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => advance(&mut i, &mut line, &mut col),
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            '#' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            ':' => {
                out.push(Spanned {
                    tok: Tok::Colon,
                    line: tline,
                    col: tcol,
                });
                advance(&mut i, &mut line, &mut col);
            }
            ',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    line: tline,
                    col: tcol,
                });
                advance(&mut i, &mut line, &mut col);
            }
            ';' => {
                out.push(Spanned {
                    tok: Tok::Semi,
                    line: tline,
                    col: tcol,
                });
                advance(&mut i, &mut line, &mut col);
            }
            '(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    line: tline,
                    col: tcol,
                });
                advance(&mut i, &mut line, &mut col);
            }
            ')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    line: tline,
                    col: tcol,
                });
                advance(&mut i, &mut line, &mut col);
            }
            '{' => {
                out.push(Spanned {
                    tok: Tok::LBrace,
                    line: tline,
                    col: tcol,
                });
                advance(&mut i, &mut line, &mut col);
            }
            '}' => {
                out.push(Spanned {
                    tok: Tok::RBrace,
                    line: tline,
                    col: tcol,
                });
                advance(&mut i, &mut line, &mut col);
            }
            '=' => {
                advance(&mut i, &mut line, &mut col);
                if i < bytes.len() && bytes[i] == '=' {
                    advance(&mut i, &mut line, &mut col);
                    out.push(Spanned {
                        tok: Tok::EqEq,
                        line: tline,
                        col: tcol,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Eq,
                        line: tline,
                        col: tcol,
                    });
                }
            }
            '>' => {
                advance(&mut i, &mut line, &mut col);
                if i < bytes.len() && bytes[i] == '=' {
                    advance(&mut i, &mut line, &mut col);
                    out.push(Spanned {
                        tok: Tok::Ge,
                        line: tline,
                        col: tcol,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Gt,
                        line: tline,
                        col: tcol,
                    });
                }
            }
            '<' => {
                advance(&mut i, &mut line, &mut col);
                if i < bytes.len() && bytes[i] == '=' {
                    advance(&mut i, &mut line, &mut col);
                    out.push(Spanned {
                        tok: Tok::Le,
                        line: tline,
                        col: tcol,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Lt,
                        line: tline,
                        col: tcol,
                    });
                }
            }
            '"' => {
                advance(&mut i, &mut line, &mut col); // opening quote
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(err("unterminated string literal", tline, tcol));
                    }
                    match bytes[i] {
                        '"' => {
                            advance(&mut i, &mut line, &mut col);
                            break;
                        }
                        '\\' => {
                            advance(&mut i, &mut line, &mut col);
                            if i >= bytes.len() {
                                return Err(err("unterminated escape", tline, tcol));
                            }
                            match bytes[i] {
                                '"' => s.push('"'),
                                '\\' => s.push('\\'),
                                'n' => s.push('\n'),
                                other => {
                                    return Err(err(
                                        &format!("unknown escape \\{other}"),
                                        line,
                                        col,
                                    ))
                                }
                            }
                            advance(&mut i, &mut line, &mut col);
                        }
                        other => {
                            s.push(other);
                            advance(&mut i, &mut line, &mut col);
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_digit() => {
                let mut num = String::new();
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    num.push(bytes[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                // Optional unit suffix → duration literal.
                let mut unit = String::new();
                while i < bytes.len() && bytes[i].is_ascii_alphabetic() {
                    unit.push(bytes[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                let value: f64 = num
                    .parse()
                    .map_err(|_| err(&format!("malformed number {num:?}"), tline, tcol))?;
                let tok = match unit.as_str() {
                    "" => {
                        if num.contains('.') {
                            Tok::Float(value)
                        } else {
                            Tok::Int(value as u64)
                        }
                    }
                    "s" | "sec" => Tok::Duration((value * 1e6).round() as u64),
                    "ms" => Tok::Duration((value * 1e3).round() as u64),
                    "us" => Tok::Duration(value.round() as u64),
                    "min" => Tok::Duration((value * 60e6).round() as u64),
                    other => {
                        return Err(err(&format!("unknown unit suffix {other:?}"), tline, tcol))
                    }
                };
                out.push(Spanned {
                    tok,
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    s.push(bytes[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    line: tline,
                    col: tcol,
                });
            }
            other => return Err(err(&format!("unexpected character {other:?}"), tline, tcol)),
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn figure_two_header_lexes() {
        let t = toks("begin context tracker\nactivation: magnetic_sensor_reading()");
        assert_eq!(
            t,
            vec![
                Tok::Ident("begin".into()),
                Tok::Ident("context".into()),
                Tok::Ident("tracker".into()),
                Tok::Ident("activation".into()),
                Tok::Colon,
                Tok::Ident("magnetic_sensor_reading".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn durations_parse_with_units() {
        assert_eq!(toks("1s"), vec![Tok::Duration(1_000_000), Tok::Eof]);
        assert_eq!(toks("250ms"), vec![Tok::Duration(250_000), Tok::Eof]);
        assert_eq!(toks("5us"), vec![Tok::Duration(5), Tok::Eof]);
        assert_eq!(toks("0.5s"), vec![Tok::Duration(500_000), Tok::Eof]);
        assert_eq!(toks("2min"), vec![Tok::Duration(120_000_000), Tok::Eof]);
    }

    #[test]
    fn numbers_and_comparisons() {
        assert_eq!(
            toks("temperature > 180"),
            vec![
                Tok::Ident("temperature".into()),
                Tok::Gt,
                Tok::Int(180),
                Tok::Eof
            ]
        );
        assert_eq!(toks("1.5"), vec![Tok::Float(1.5), Tok::Eof]);
        assert_eq!(
            toks(">= <= =="),
            vec![Tok::Ge, Tok::Le, Tok::EqEq, Tok::Eof]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks(r#""hello""#), vec![Tok::Str("hello".into()), Tok::Eof]);
        assert_eq!(
            toks(r#""a\"b\\c""#),
            vec![Tok::Str(r#"a"b\c"#.into()), Tok::Eof]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // comment\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
        assert_eq!(
            toks("# whole line\nc"),
            vec![Tok::Ident("c".into()), Tok::Eof]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let spanned = lex("a\n  b").unwrap();
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[1].line, spanned[1].col), (2, 3));
    }

    #[test]
    fn unknown_characters_error_with_position() {
        let e = lex("ok @").unwrap_err();
        assert!(e.message.contains('@'));
        assert_eq!((e.line, e.col), (1, 4));
    }

    #[test]
    fn unknown_unit_suffix_is_rejected() {
        assert!(lex("5parsecs").is_err());
    }
}
