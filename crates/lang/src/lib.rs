//! # envirotrack-lang
//!
//! The EnviroTrack declaration language (paper §4, Appendix A) and its
//! preprocessor. Where the original emitted NesC from program templates,
//! this crate compiles the same surface syntax straight into the runtime
//! [`Program`](envirotrack_core::api::Program) structures executed by
//! `envirotrack-core`:
//!
//! ```
//! use envirotrack_lang::compile::compile_source;
//!
//! // Figure 2 of the paper, verbatim modulo whitespace.
//! let program = compile_source(r#"
//!     begin context tracker
//!       activation: magnetic_sensor_reading()
//!       location : avg(position) confidence=2, freshness=1s
//!       begin object reporter
//!         invocation: TIMER(5s)
//!         report_function() {
//!           MySend(pursuer, self:label, location);
//!         }
//!       end
//!     end context
//! "#).unwrap();
//! assert!(program.type_id("tracker").is_some());
//! ```
//!
//! * [`token`] — the lexer.
//! * [`ast`] — the syntax tree (mirrors the Appendix-A grammar).
//! * [`parser`] — recursive descent with positioned errors.
//! * [`builtins`] — the named sensing-function library.
//! * [`compile`] — semantic analysis and code generation.

pub mod ast;
pub mod builtins;
pub mod compile;
pub mod parser;
pub mod pretty;
pub mod token;

pub use builtins::Builtins;
pub use compile::{compile_source, compile_source_with, CompileError};
pub use parser::{parse, ParseError};
