//! Abstract syntax for the EnviroTrack declaration language (Appendix A).
//!
//! The AST is deliberately close to the paper's grammar: a program is a
//! list of context declarations, each holding an activation condition,
//! aggregate variable declarations with attribute lists, and attached
//! object declarations whose functions carry invocation conditions.

/// A parsed program: one or more context declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramDecl {
    /// The declared context types, in source order.
    pub contexts: Vec<ContextDecl>,
}

/// One `begin context … end context` block.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextDecl {
    /// The context type name.
    pub name: String,
    /// The `activation:` condition (`sense_e()`).
    pub activation: BoolExpr,
    /// The optional `deactivation:` condition.
    pub deactivation: Option<BoolExpr>,
    /// Directory subscriptions (`subscribe: fire`).
    pub subscriptions: Vec<String>,
    /// Static-object pin (`pinned: 3.0, 4.0`): instantiate once at this
    /// coordinate instead of tracking a sensed entity.
    pub pinned: Option<(f64, f64)>,
    /// Aggregate state variable declarations.
    pub aggregates: Vec<AggrDecl>,
    /// Attached object declarations.
    pub objects: Vec<ObjectDecl>,
    /// Source line of the declaration.
    pub line: u32,
}

/// A boolean sensing expression.
#[derive(Debug, Clone, PartialEq)]
pub enum BoolExpr {
    /// A library sensing function: `magnetic_sensor_reading()`,
    /// `temperature_above(180)`.
    Call {
        /// Function name.
        name: String,
        /// Numeric arguments.
        args: Vec<f64>,
    },
    /// A channel comparison: `temperature > 180`.
    Compare {
        /// Channel name.
        channel: String,
        /// Comparison operator.
        op: CmpOp,
        /// Threshold.
        value: f64,
    },
    /// A bare channel used as a boolean — the paper's `(light)`; true when
    /// the reading exceeds 0.5.
    Truthy {
        /// Channel name.
        channel: String,
    },
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
}

/// Comparison operators in sensing expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `==`
    Eq,
}

/// One aggregate variable declaration:
/// `location : avg(position) confidence=2, freshness=1s`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggrDecl {
    /// Variable name.
    pub name: String,
    /// Aggregation function name (`avg`, `sum`, `max`, …).
    pub function: String,
    /// Input name: `position` or a channel name.
    pub input: String,
    /// Attribute list (`confidence`, `freshness`, …).
    pub attrs: Vec<(String, AttrValue)>,
    /// Source line.
    pub line: u32,
}

/// An attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// An integer (e.g. `confidence=2`).
    Int(u64),
    /// A float.
    Float(f64),
    /// A duration in microseconds (e.g. `freshness=1s`).
    DurationMicros(u64),
    /// A bare identifier.
    Ident(String),
}

/// One `begin object … end` block.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectDecl {
    /// Object name.
    pub name: String,
    /// The object's functions.
    pub methods: Vec<MethodDecl>,
}

/// One function with its invocation condition.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// Function name.
    pub name: String,
    /// When it runs.
    pub invocation: InvocationDecl,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line.
    pub line: u32,
}

/// An invocation condition.
#[derive(Debug, Clone, PartialEq)]
pub enum InvocationDecl {
    /// `TIMER(5s)` — periodic, period in microseconds.
    TimerMicros(u64),
    /// `MESSAGE(7)` — on MTP message arrival at a port.
    MessagePort(u16),
}

/// A body statement: a call like `MySend(pursuer, self:label, location);`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Callee name (`MySend`, `log`, `send`, `set_state`).
    pub name: String,
    /// Arguments.
    pub args: Vec<Expr>,
    /// Source line.
    pub line: u32,
}

/// A body expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `self:label` — the enclosing context label handle.
    SelfLabel,
    /// A bare identifier (usually an aggregate variable name).
    Var(String),
    /// A string literal.
    Str(String),
    /// A numeric literal.
    Num(f64),
}
