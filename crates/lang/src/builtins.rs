//! The library of named sensing functions.
//!
//! The paper: "EnviroTrack contains a library of such functions for the
//! programmer to choose from. New user-defined functions can be easily
//! added by application developers." [`Builtins::standard`] is that
//! library; [`Builtins::register`] is the extension point.

use std::collections::BTreeMap;
use std::sync::Arc;

use envirotrack_core::context::SensePredicate;
use envirotrack_world::target::Channel;

/// A factory producing a [`SensePredicate`] from numeric arguments.
type Factory = Arc<dyn Fn(&[f64]) -> Result<SensePredicate, String> + Send + Sync>;

/// A registry of named sensing functions usable in `activation:` clauses.
#[derive(Clone)]
pub struct Builtins {
    entries: BTreeMap<String, Factory>,
}

impl std::fmt::Debug for Builtins {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Builtins")
            .field("names", &self.names())
            .finish()
    }
}

fn expect_args(name: &str, args: &[f64], n: usize) -> Result<(), String> {
    if args.len() == n {
        Ok(())
    } else {
        Err(format!(
            "{name}() takes {n} argument(s), got {}",
            args.len()
        ))
    }
}

impl Builtins {
    /// An empty registry.
    #[must_use]
    pub fn empty() -> Self {
        Builtins {
            entries: BTreeMap::new(),
        }
    }

    /// The standard library:
    ///
    /// * `magnetic_sensor_reading()` — the paper's vehicle detector
    ///   (`magnetic > 0.5`);
    /// * `light_sensor_reading()`, `motion_detected()`,
    ///   `acoustic_detected()` — analogous threshold detectors;
    /// * `<channel>_above(x)` / `<channel>_below(x)` for every channel.
    #[must_use]
    pub fn standard() -> Self {
        let mut b = Builtins::empty();
        b.register("magnetic_sensor_reading", |args| {
            expect_args("magnetic_sensor_reading", args, 0)?;
            Ok(SensePredicate::threshold(Channel::Magnetic, 0.5))
        });
        b.register("light_sensor_reading", |args| {
            expect_args("light_sensor_reading", args, 0)?;
            Ok(SensePredicate::threshold(Channel::Light, 0.5))
        });
        b.register("motion_detected", |args| {
            expect_args("motion_detected", args, 0)?;
            Ok(SensePredicate::threshold(Channel::Motion, 0.5))
        });
        b.register("acoustic_detected", |args| {
            expect_args("acoustic_detected", args, 0)?;
            Ok(SensePredicate::threshold(Channel::Acoustic, 0.5))
        });
        for ch in Channel::ALL {
            b.register(format!("{ch}_above"), move |args| {
                expect_args("*_above", args, 1)?;
                Ok(SensePredicate::threshold(ch, args[0]))
            });
            b.register(format!("{ch}_below"), move |args| {
                expect_args("*_below", args, 1)?;
                let t = args[0];
                Ok(SensePredicate::new(format!("{ch} < {t}"), move |s| {
                    s.get(ch) < t
                }))
            });
        }
        b
    }

    /// Registers (or replaces) a named sensing function.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(&[f64]) -> Result<SensePredicate, String> + Send + Sync + 'static,
    ) {
        self.entries.insert(name.into(), Arc::new(factory));
    }

    /// Instantiates a named function with arguments.
    ///
    /// # Errors
    ///
    /// Returns a message when the name is unknown or the arity is wrong.
    pub fn instantiate(&self, name: &str, args: &[f64]) -> Result<SensePredicate, String> {
        match self.entries.get(name) {
            Some(f) => f(args),
            None => Err(format!(
                "unknown sensing function {name:?} (available: {})",
                self.names().join(", ")
            )),
        }
    }

    /// The registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }
}

impl Default for Builtins {
    fn default() -> Self {
        Builtins::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use envirotrack_world::sensing::SensorSample;

    #[test]
    fn standard_library_has_the_papers_detector() {
        let b = Builtins::standard();
        let p = b.instantiate("magnetic_sensor_reading", &[]).unwrap();
        let mut s = SensorSample::zero();
        assert!(!p.eval(&s));
        s.set(Channel::Magnetic, 0.9);
        assert!(p.eval(&s));
    }

    #[test]
    fn above_and_below_variants_exist_for_every_channel() {
        let b = Builtins::standard();
        for ch in Channel::ALL {
            let above = b.instantiate(&format!("{ch}_above"), &[10.0]).unwrap();
            let below = b.instantiate(&format!("{ch}_below"), &[10.0]).unwrap();
            let mut s = SensorSample::zero();
            s.set(ch, 20.0);
            assert!(above.eval(&s));
            assert!(!below.eval(&s));
        }
    }

    #[test]
    fn arity_is_checked() {
        let b = Builtins::standard();
        assert!(b.instantiate("magnetic_sensor_reading", &[1.0]).is_err());
        assert!(b.instantiate("temperature_above", &[]).is_err());
    }

    #[test]
    fn unknown_names_list_alternatives() {
        let b = Builtins::standard();
        let e = b.instantiate("seismic_reading", &[]).unwrap_err();
        assert!(e.contains("unknown sensing function"));
        assert!(e.contains("magnetic_sensor_reading"));
    }

    #[test]
    fn user_functions_can_be_registered() {
        let mut b = Builtins::empty();
        b.register("hot_and_bright", |_args| {
            Ok(SensePredicate::threshold(Channel::Temperature, 180.0)
                .and(SensePredicate::threshold(Channel::Light, 0.5)))
        });
        let p = b.instantiate("hot_and_bright", &[]).unwrap();
        let mut s = SensorSample::zero();
        s.set(Channel::Temperature, 200.0);
        s.set(Channel::Light, 1.0);
        assert!(p.eval(&s));
    }
}
