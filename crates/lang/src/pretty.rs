//! Pretty-printer: AST back to EnviroTrack source.
//!
//! The emitted text re-parses to an identical AST ([`parse`] ∘
//! [`to_source`] is the identity on ASTs), which the property tests
//! exercise; it is also handy for tooling that rewrites declarations.
//!
//! [`parse`]: crate::parser::parse
//!
//! ```
//! use envirotrack_lang::parser::parse;
//! use envirotrack_lang::pretty::to_source;
//!
//! let ast = parse("begin context t\n activation: light\n end context").unwrap();
//! let src = to_source(&ast);
//! assert_eq!(parse(&src).unwrap().contexts[0].name, "t");
//! ```

use std::fmt::Write as _;

use crate::ast::{
    AggrDecl, AttrValue, BoolExpr, CmpOp, ContextDecl, Expr, InvocationDecl, MethodDecl,
    ObjectDecl, ProgramDecl, Stmt,
};

/// Renders a whole program.
#[must_use]
pub fn to_source(p: &ProgramDecl) -> String {
    let mut out = String::new();
    for c in &p.contexts {
        context_to_source(c, &mut out);
        out.push('\n');
    }
    out
}

fn context_to_source(c: &ContextDecl, out: &mut String) {
    let _ = writeln!(out, "begin context {}", c.name);
    let _ = writeln!(out, "  activation: {}", bool_expr(&c.activation));
    if let Some(d) = &c.deactivation {
        let _ = writeln!(out, "  deactivation: {}", bool_expr(d));
    }
    if let Some((x, y)) = c.pinned {
        let _ = writeln!(out, "  pinned: {}, {}", fmt_num(x), fmt_num(y));
    }
    for s in &c.subscriptions {
        let _ = writeln!(out, "  subscribe: {s}");
    }
    for a in &c.aggregates {
        let _ = writeln!(out, "  {}", aggr(a));
    }
    for o in &c.objects {
        object_to_source(o, out);
    }
    let _ = writeln!(out, "end context");
}

fn object_to_source(o: &ObjectDecl, out: &mut String) {
    let _ = writeln!(out, "  begin object {}", o.name);
    for m in &o.methods {
        method_to_source(m, out);
    }
    let _ = writeln!(out, "  end");
}

fn method_to_source(m: &MethodDecl, out: &mut String) {
    match m.invocation {
        InvocationDecl::TimerMicros(us) => {
            let _ = writeln!(out, "    invocation: TIMER({})", duration(us));
        }
        InvocationDecl::MessagePort(p) => {
            let _ = writeln!(out, "    invocation: MESSAGE({p})");
        }
    }
    let _ = writeln!(out, "    {}() {{", m.name);
    for s in &m.body {
        let _ = writeln!(out, "      {}", stmt(s));
    }
    let _ = writeln!(out, "    }}");
}

fn aggr(a: &AggrDecl) -> String {
    let attrs: Vec<String> = a
        .attrs
        .iter()
        .map(|(k, v)| match v {
            AttrValue::Int(n) => format!("{k}={n}"),
            AttrValue::Float(x) => format!("{k}={x}"),
            AttrValue::DurationMicros(us) => format!("{k}={}", duration(*us)),
            AttrValue::Ident(s) => format!("{k}={s}"),
        })
        .collect();
    format!(
        "{} : {}({}) {}",
        a.name,
        a.function,
        a.input,
        attrs.join(", ")
    )
}

fn fmt_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn duration(us: u64) -> String {
    if us.is_multiple_of(1_000_000) {
        format!("{}s", us / 1_000_000)
    } else if us.is_multiple_of(1_000) {
        format!("{}ms", us / 1_000)
    } else {
        format!("{us}us")
    }
}

fn stmt(s: &Stmt) -> String {
    let args: Vec<String> = s.args.iter().map(expr).collect();
    format!("{}({});", s.name, args.join(", "))
}

fn expr(e: &Expr) -> String {
    match e {
        Expr::SelfLabel => "self:label".into(),
        Expr::Var(v) => v.clone(),
        Expr::Str(s) => format!("{s:?}"),
        Expr::Num(x) => {
            // Integral numbers must print without a dot so they re-lex as
            // the same token class.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                format!("{}", *x as i64)
            } else {
                format!("{x}")
            }
        }
    }
}

/// Renders a boolean sensing expression (fully parenthesised, so
/// precedence survives the round trip).
#[must_use]
pub fn bool_expr(e: &BoolExpr) -> String {
    match e {
        BoolExpr::Call { name, args } => {
            let args: Vec<String> = args
                .iter()
                .map(|x| {
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        format!("{}", *x as i64)
                    } else {
                        format!("{x}")
                    }
                })
                .collect();
            format!("{name}({})", args.join(", "))
        }
        BoolExpr::Compare { channel, op, value } => {
            let op = match op {
                CmpOp::Gt => ">",
                CmpOp::Lt => "<",
                CmpOp::Ge => ">=",
                CmpOp::Le => "<=",
                CmpOp::Eq => "==",
            };
            if value.fract() == 0.0 && value.abs() < 1e15 {
                format!("{channel} {op} {}", *value as i64)
            } else {
                format!("{channel} {op} {value}")
            }
        }
        BoolExpr::Truthy { channel } => channel.clone(),
        BoolExpr::And(l, r) => format!("({} and {})", bool_expr(l), bool_expr(r)),
        BoolExpr::Or(l, r) => format!("({} or {})", bool_expr(l), bool_expr(r)),
        BoolExpr::Not(inner) => format!("(not {})", bool_expr(inner)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Zeroes source positions so structural comparison ignores layout.
    fn strip(mut p: ProgramDecl) -> ProgramDecl {
        for c in &mut p.contexts {
            c.line = 0;
            for a in &mut c.aggregates {
                a.line = 0;
            }
            for o in &mut c.objects {
                for m in &mut o.methods {
                    m.line = 0;
                    for s in &mut m.body {
                        s.line = 0;
                    }
                }
            }
        }
        p
    }

    #[test]
    fn figure_two_round_trips() {
        let src = r#"
            begin context tracker
              activation: magnetic_sensor_reading()
              location : avg(position) confidence=2, freshness=1s
              begin object reporter
                invocation: TIMER(5s)
                report_function() {
                  MySend(pursuer, self:label, location);
                }
              end
            end context
        "#;
        let ast = parse(src).unwrap();
        let printed = to_source(&ast);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{e}\n---\n{printed}"));
        assert_eq!(strip(reparsed), strip(ast));
    }

    #[test]
    fn precedence_survives_printing() {
        let src = "begin context x\n activation: not a and (b or c)\n end context";
        let ast = parse(src).unwrap();
        let reparsed = parse(&to_source(&ast)).unwrap();
        assert_eq!(strip(reparsed), strip(ast));
    }

    #[test]
    fn durations_print_in_natural_units() {
        assert_eq!(duration(5_000_000), "5s");
        assert_eq!(duration(250_000), "250ms");
        assert_eq!(duration(17), "17us");
    }
}
