//! Recursive-descent parser for the Appendix-A grammar.
//!
//! ```
//! use envirotrack_lang::parser::parse;
//!
//! let program = parse(r#"
//!     begin context tracker
//!       activation: magnetic_sensor_reading()
//!       location : avg(position) confidence=2, freshness=1s
//!       begin object reporter
//!         invocation: TIMER(5s)
//!         report_function() {
//!           MySend(pursuer, self:label, location);
//!         }
//!       end
//!     end context
//! "#).unwrap();
//! assert_eq!(program.contexts.len(), 1);
//! assert_eq!(program.contexts[0].name, "tracker");
//! ```

use std::fmt;

use crate::ast::{
    AggrDecl, AttrValue, BoolExpr, CmpOp, ContextDecl, Expr, InvocationDecl, MethodDecl,
    ObjectDecl, ProgramDecl, Stmt,
};
use crate::token::{lex, LexError, Spanned, Tok};

/// A parse error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parses a full program.
///
/// # Errors
///
/// Returns [`ParseError`] with the position of the first offending token.
pub fn parse(src: &str) -> Result<ProgramDecl, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut contexts = Vec::new();
    while !p.at_eof() {
        contexts.push(p.context_decl()?);
    }
    if contexts.is_empty() {
        return Err(ParseError {
            message: "empty program: expected `begin context`".into(),
            line: 1,
            col: 1,
        });
    }
    Ok(ProgramDecl { contexts })
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Spanned {
        &self.toks[self.pos]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().tok, Tok::Eof)
    }

    fn bump(&mut self) -> Spanned {
        let s = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        s
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let s = self.peek();
        Err(ParseError {
            message: message.into(),
            line: s.line,
            col: s.col,
        })
    }

    fn expect_tok(&mut self, tok: &Tok, what: &str) -> Result<Spanned, ParseError> {
        if &self.peek().tok == tok {
            Ok(self.bump())
        } else {
            self.error(format!("expected {what}, found `{}`", self.peek().tok))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, u32), ParseError> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                let line = self.peek().line;
                self.bump();
                Ok((s, line))
            }
            other => self.error(format!("expected identifier, found `{other}`")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match &self.peek().tok {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => self.error(format!("expected `{kw}`, found `{other}`")),
        }
    }

    fn peek_ident(&self) -> Option<&str> {
        match &self.peek().tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    fn peek2_tok(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    // ------------------------------------------------------------------

    fn context_decl(&mut self) -> Result<ContextDecl, ParseError> {
        let line = self.peek().line;
        self.expect_keyword("begin")?;
        self.expect_keyword("context")?;
        let (name, _) = self.expect_ident()?;

        self.expect_keyword("activation")?;
        self.expect_tok(&Tok::Colon, "`:` after activation")?;
        let activation = self.bool_expr()?;

        let mut deactivation = None;
        let mut subscriptions = Vec::new();
        let mut aggregates = Vec::new();
        let mut objects = Vec::new();
        let mut pinned = None;

        loop {
            match self.peek_ident() {
                Some("end") => {
                    self.bump();
                    self.expect_keyword("context")?;
                    break;
                }
                Some("deactivation") => {
                    self.bump();
                    self.expect_tok(&Tok::Colon, "`:` after deactivation")?;
                    if deactivation.is_some() {
                        return self.error("duplicate deactivation clause");
                    }
                    deactivation = Some(self.bool_expr()?);
                }
                Some("subscribe") => {
                    self.bump();
                    self.expect_tok(&Tok::Colon, "`:` after subscribe")?;
                    let (t, _) = self.expect_ident()?;
                    subscriptions.push(t);
                }
                Some("pinned") => {
                    self.bump();
                    self.expect_tok(&Tok::Colon, "`:` after pinned")?;
                    let x = self.number("x coordinate")?;
                    self.expect_tok(&Tok::Comma, "`,` between coordinates")?;
                    let y = self.number("y coordinate")?;
                    if pinned.is_some() {
                        return self.error("duplicate pinned clause");
                    }
                    pinned = Some((x, y));
                }
                Some("begin") => {
                    objects.push(self.object_decl()?);
                }
                Some(_) if self.peek2_tok() == Some(&Tok::Colon) => {
                    aggregates.push(self.aggr_decl()?);
                }
                _ => {
                    return self.error(
                        "expected an aggregate declaration, `begin object`, or `end context`",
                    )
                }
            }
        }

        Ok(ContextDecl {
            name,
            activation,
            deactivation,
            subscriptions,
            aggregates,
            objects,
            pinned,
            line,
        })
    }

    fn number(&mut self, what: &str) -> Result<f64, ParseError> {
        match self.bump().tok {
            Tok::Int(n) => Ok(n as f64),
            Tok::Float(x) => Ok(x),
            other => self.error(format!("expected {what}, found `{other}`")),
        }
    }

    fn aggr_decl(&mut self) -> Result<AggrDecl, ParseError> {
        let (name, line) = self.expect_ident()?;
        self.expect_tok(&Tok::Colon, "`:` in aggregate declaration")?;
        let (function, _) = self.expect_ident()?;
        self.expect_tok(&Tok::LParen, "`(` after aggregation function")?;
        let (input, _) = self.expect_ident()?;
        self.expect_tok(&Tok::RParen, "`)` after aggregation input")?;

        let mut attrs = Vec::new();
        loop {
            // Attribute list: IDENT = value, possibly comma-separated. It
            // ends when the next token isn't `ident =`.
            let is_attr =
                matches!(&self.peek().tok, Tok::Ident(_)) && self.peek2_tok() == Some(&Tok::Eq);
            if !is_attr {
                break;
            }
            let (key, _) = self.expect_ident()?;
            self.expect_tok(&Tok::Eq, "`=` in attribute")?;
            let value = match self.bump().tok {
                Tok::Int(n) => AttrValue::Int(n),
                Tok::Float(x) => AttrValue::Float(x),
                Tok::Duration(us) => AttrValue::DurationMicros(us),
                Tok::Ident(s) => AttrValue::Ident(s),
                other => return self.error(format!("invalid attribute value `{other}`")),
            };
            attrs.push((key, value));
            if self.peek().tok == Tok::Comma {
                self.bump();
            }
        }
        Ok(AggrDecl {
            name,
            function,
            input,
            attrs,
            line,
        })
    }

    fn object_decl(&mut self) -> Result<ObjectDecl, ParseError> {
        self.expect_keyword("begin")?;
        self.expect_keyword("object")?;
        let (name, _) = self.expect_ident()?;
        let mut methods = Vec::new();
        loop {
            match self.peek_ident() {
                Some("end") => {
                    self.bump();
                    break;
                }
                Some("invocation") => methods.push(self.method_decl()?),
                _ => return self.error("expected `invocation:` or `end` in object"),
            }
        }
        if methods.is_empty() {
            return self.error("an object needs at least one function");
        }
        Ok(ObjectDecl { name, methods })
    }

    fn method_decl(&mut self) -> Result<MethodDecl, ParseError> {
        self.expect_keyword("invocation")?;
        self.expect_tok(&Tok::Colon, "`:` after invocation")?;
        let (kind, _) = self.expect_ident()?;
        let invocation = match kind.to_ascii_uppercase().as_str() {
            "TIMER" => {
                self.expect_tok(&Tok::LParen, "`(`")?;
                let us = match self.bump().tok {
                    Tok::Duration(us) => us,
                    Tok::Int(secs) => secs * 1_000_000,
                    other => return self.error(format!("expected a period, found `{other}`")),
                };
                self.expect_tok(&Tok::RParen, "`)`")?;
                InvocationDecl::TimerMicros(us)
            }
            "MESSAGE" => {
                self.expect_tok(&Tok::LParen, "`(`")?;
                let port = match self.bump().tok {
                    Tok::Int(n) if n <= u64::from(u16::MAX) => n as u16,
                    other => return self.error(format!("expected a port number, found `{other}`")),
                };
                self.expect_tok(&Tok::RParen, "`)`")?;
                InvocationDecl::MessagePort(port)
            }
            other => {
                return self.error(format!(
                    "unknown invocation condition `{other}` (expected TIMER or MESSAGE)"
                ))
            }
        };

        let (name, line) = self.expect_ident()?;
        self.expect_tok(&Tok::LParen, "`(` after function name")?;
        self.expect_tok(&Tok::RParen, "`)` (parameters are not supported)")?;
        self.expect_tok(&Tok::LBrace, "`{` opening the function body")?;
        let mut body = Vec::new();
        while self.peek().tok != Tok::RBrace {
            body.push(self.stmt()?);
        }
        self.expect_tok(&Tok::RBrace, "`}`")?;
        Ok(MethodDecl {
            name,
            invocation,
            body,
            line,
        })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let (name, line) = self.expect_ident()?;
        self.expect_tok(&Tok::LParen, "`(` in statement")?;
        let mut args = Vec::new();
        if self.peek().tok != Tok::RParen {
            loop {
                args.push(self.expr()?);
                if self.peek().tok == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_tok(&Tok::RParen, "`)` closing the argument list")?;
        self.expect_tok(&Tok::Semi, "`;` after statement")?;
        Ok(Stmt { name, args, line })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.bump().tok {
            Tok::Ident(s) if s == "self" => {
                self.expect_tok(&Tok::Colon, "`:` in self:label")?;
                self.expect_keyword("label")?;
                Ok(Expr::SelfLabel)
            }
            Tok::Ident(s) => Ok(Expr::Var(s)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Int(n) => Ok(Expr::Num(n as f64)),
            Tok::Float(x) => Ok(Expr::Num(x)),
            other => self.error(format!("invalid expression `{other}`")),
        }
    }

    // ------------------------------------------------------------------
    // Boolean sensing expressions (precedence: not > and > or).
    // ------------------------------------------------------------------

    fn bool_expr(&mut self) -> Result<BoolExpr, ParseError> {
        let mut left = self.and_expr()?;
        while self.peek_ident() == Some("or") {
            self.bump();
            let right = self.and_expr()?;
            left = BoolExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<BoolExpr, ParseError> {
        let mut left = self.unary_expr()?;
        while self.peek_ident() == Some("and") {
            self.bump();
            let right = self.unary_expr()?;
            left = BoolExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<BoolExpr, ParseError> {
        if self.peek_ident() == Some("not") {
            self.bump();
            let inner = self.unary_expr()?;
            return Ok(BoolExpr::Not(Box::new(inner)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<BoolExpr, ParseError> {
        if self.peek().tok == Tok::LParen {
            self.bump();
            let inner = self.bool_expr()?;
            self.expect_tok(&Tok::RParen, "`)`")?;
            return Ok(inner);
        }
        let (name, _) = self.expect_ident()?;
        match &self.peek().tok {
            Tok::LParen => {
                self.bump();
                let mut args = Vec::new();
                if self.peek().tok != Tok::RParen {
                    loop {
                        match self.bump().tok {
                            Tok::Int(n) => args.push(n as f64),
                            Tok::Float(x) => args.push(x),
                            other => {
                                return self.error(format!(
                                    "sensing functions take numbers, found `{other}`"
                                ))
                            }
                        }
                        if self.peek().tok == Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect_tok(&Tok::RParen, "`)`")?;
                Ok(BoolExpr::Call { name, args })
            }
            Tok::Gt | Tok::Lt | Tok::Ge | Tok::Le | Tok::EqEq => {
                let op = match self.bump().tok {
                    Tok::Gt => CmpOp::Gt,
                    Tok::Lt => CmpOp::Lt,
                    Tok::Ge => CmpOp::Ge,
                    Tok::Le => CmpOp::Le,
                    Tok::EqEq => CmpOp::Eq,
                    _ => unreachable!("guarded by the match above"),
                };
                let value = match self.bump().tok {
                    Tok::Int(n) => n as f64,
                    Tok::Float(x) => x,
                    other => return self.error(format!("expected a number, found `{other}`")),
                };
                Ok(BoolExpr::Compare {
                    channel: name,
                    op,
                    value,
                })
            }
            _ => Ok(BoolExpr::Truthy { channel: name }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE_2: &str = r#"
        begin context tracker
          activation: magnetic_sensor_reading()
          location : avg(position) confidence=2, freshness=1s
          begin object reporter
            invocation: TIMER(5s)
            report_function() {
              MySend(pursuer, self:label, location);
            }
          end
        end context
    "#;

    #[test]
    fn figure_two_parses_exactly() {
        let p = parse(FIGURE_2).unwrap();
        assert_eq!(p.contexts.len(), 1);
        let c = &p.contexts[0];
        assert_eq!(c.name, "tracker");
        assert_eq!(
            c.activation,
            BoolExpr::Call {
                name: "magnetic_sensor_reading".into(),
                args: vec![]
            }
        );
        assert!(c.deactivation.is_none());
        assert_eq!(c.aggregates.len(), 1);
        let a = &c.aggregates[0];
        assert_eq!(a.name, "location");
        assert_eq!(a.function, "avg");
        assert_eq!(a.input, "position");
        assert_eq!(
            a.attrs,
            vec![
                ("confidence".into(), AttrValue::Int(2)),
                ("freshness".into(), AttrValue::DurationMicros(1_000_000)),
            ]
        );
        assert_eq!(c.objects.len(), 1);
        let o = &c.objects[0];
        assert_eq!(o.name, "reporter");
        assert_eq!(o.methods.len(), 1);
        let m = &o.methods[0];
        assert_eq!(m.name, "report_function");
        assert_eq!(m.invocation, InvocationDecl::TimerMicros(5_000_000));
        assert_eq!(m.body.len(), 1);
        assert_eq!(m.body[0].name, "MySend");
        assert_eq!(
            m.body[0].args,
            vec![
                Expr::Var("pursuer".into()),
                Expr::SelfLabel,
                Expr::Var("location".into())
            ]
        );
    }

    #[test]
    fn fire_condition_with_and_parses() {
        let p = parse("begin context fire\n activation: temperature > 180 and light\n end context")
            .unwrap();
        match &p.contexts[0].activation {
            BoolExpr::And(l, r) => {
                assert_eq!(
                    **l,
                    BoolExpr::Compare {
                        channel: "temperature".into(),
                        op: CmpOp::Gt,
                        value: 180.0
                    }
                );
                assert_eq!(
                    **r,
                    BoolExpr::Truthy {
                        channel: "light".into()
                    }
                );
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn precedence_not_and_or() {
        let p = parse("begin context x\n activation: not a and b or c\n end context").unwrap();
        // ((not a) and b) or c
        match &p.contexts[0].activation {
            BoolExpr::Or(l, r) => {
                assert_eq!(
                    **r,
                    BoolExpr::Truthy {
                        channel: "c".into()
                    }
                );
                match &**l {
                    BoolExpr::And(ll, lr) => {
                        assert!(matches!(**ll, BoolExpr::Not(_)));
                        assert_eq!(
                            **lr,
                            BoolExpr::Truthy {
                                channel: "b".into()
                            }
                        );
                    }
                    other => panic!("expected And, got {other:?}"),
                }
            }
            other => panic!("expected Or, got {other:?}"),
        }
        // Parentheses override.
        let p = parse("begin context x\n activation: a and (b or c)\n end context").unwrap();
        assert!(
            matches!(&p.contexts[0].activation, BoolExpr::And(_, r) if matches!(**r, BoolExpr::Or(_, _)))
        );
    }

    #[test]
    fn pinned_clause_parses() {
        let p = parse("begin context panel\n activation: light\n pinned: 3.5, 4\n end context")
            .unwrap();
        assert_eq!(p.contexts[0].pinned, Some((3.5, 4.0)));
        let e = parse(
            "begin context panel\n activation: light\n pinned: 1, 2\n pinned: 3, 4\n end context",
        )
        .unwrap_err();
        assert!(e.message.contains("duplicate pinned"), "{e}");
    }

    #[test]
    fn deactivation_and_subscriptions_parse() {
        let p = parse(
            "begin context fire\n activation: temperature > 180\n deactivation: temperature < 120\n subscribe: sprinkler\n end context",
        )
        .unwrap();
        let c = &p.contexts[0];
        assert!(c.deactivation.is_some());
        assert_eq!(c.subscriptions, vec!["sprinkler".to_owned()]);
    }

    #[test]
    fn message_invocation_and_multiple_statements() {
        let p = parse(
            r#"begin context relay
                 activation: motion_detected()
                 begin object sink
                   invocation: MESSAGE(7)
                   on_msg() {
                     log("got one");
                     log("and another");
                   }
                 end
               end context"#,
        )
        .unwrap();
        let m = &p.contexts[0].objects[0].methods[0];
        assert_eq!(m.invocation, InvocationDecl::MessagePort(7));
        assert_eq!(m.body.len(), 2);
        assert_eq!(m.body[1].args, vec![Expr::Str("and another".into())]);
    }

    #[test]
    fn multiple_contexts_parse() {
        let p = parse(
            "begin context a\n activation: light\n end context\nbegin context b\n activation: motion\n end context",
        )
        .unwrap();
        assert_eq!(p.contexts.len(), 2);
        assert_eq!(p.contexts[1].name, "b");
    }

    #[test]
    fn errors_carry_positions_and_hints() {
        let e = parse("begin context x\n activation magnetic\n end context").unwrap_err();
        assert!(e.message.contains("`:`"), "{e}");
        assert_eq!(e.line, 2);

        let e = parse("").unwrap_err();
        assert!(e.message.contains("empty program"));

        let e = parse("begin context x\n activation: a\n begin object o\n end\n end context")
            .unwrap_err();
        assert!(e.message.contains("at least one function"), "{e}");

        let e = parse(
            "begin context x\n activation: a\n begin object o\n invocation: WHENEVER(1s)\n f() {}\n end\n end context",
        )
        .unwrap_err();
        assert!(e.message.contains("WHENEVER"), "{e}");
    }

    #[test]
    fn statement_requires_semicolon() {
        let e = parse(
            r#"begin context x
                 activation: a
                 begin object o
                   invocation: TIMER(1s)
                   f() { log("hi") }
                 end
               end context"#,
        )
        .unwrap_err();
        assert!(e.message.contains("`;`"), "{e}");
    }
}
